//! The cluster's chunk→node placement index.
//!
//! The previous implementation was a single `BTreeMap<ChunkKey, NodeId>`:
//! every insert paid a tree descent, key copies, and amortized node
//! splits — on the ingest hot path, once per chunk. This module replaces
//! it with a **per-array dense grid index**: once an array's chunk-grid
//! extents are registered ([`PlacementIndex::register_dense`]), its
//! placements live in a flat row-major `Vec<u32>` (`NodeId` or a vacancy
//! sentinel), making insert and lookup O(1) array reads with no per-chunk
//! allocation. Chunks outside the registered extents (unbounded
//! dimensions growing past the hint) and arrays that never register fall
//! back to hash maps, so correctness never depends on the hint.

use crate::node::NodeId;
use array_model::{ArrayId, ChunkCoords, ChunkKey, MAX_DIMS};
use std::collections::HashMap;

/// Vacant-slot sentinel in dense grids (`NodeId`s are join-order indices
/// and can never reach it: clusters hold well under 4 billion nodes).
const VACANT: u32 = u32::MAX;

/// Largest dense grid we will allocate, in slots (16M slots = 64 MB).
/// Bigger registrations silently stay sparse.
const DENSE_SLOT_CAP: u128 = 1 << 24;

/// Highest `ArrayId` that gets its own indexed slot; stranger ids share
/// one sparse overflow map.
const ARRAY_ID_CAP: u32 = 4096;

/// A dense row-major placement grid for one array.
#[derive(Debug, Clone)]
struct DenseGrid {
    /// Chunk-count extents per dimension.
    extents: [i64; MAX_DIMS],
    ndims: u8,
    /// Row-major `NodeId.0` per chunk coordinate, or [`VACANT`].
    slots: Vec<u32>,
    /// Number of occupied entries in `slots`.
    resident: usize,
    /// Chunks whose coordinates fall outside `extents`.
    spill: HashMap<ChunkCoords, NodeId>,
}

impl DenseGrid {
    /// Row-major linearization of `coords`, or `None` when outside the
    /// registered extents.
    #[inline]
    fn linearize(&self, coords: &ChunkCoords) -> Option<usize> {
        if coords.ndims() != self.ndims as usize {
            return None;
        }
        let mut lin: usize = 0;
        for (d, &c) in coords.iter().enumerate() {
            let extent = self.extents[d];
            if c < 0 || c >= extent {
                return None;
            }
            lin = lin * extent as usize + c as usize;
        }
        Some(lin)
    }

    fn get(&self, coords: &ChunkCoords) -> Option<NodeId> {
        match self.linearize(coords) {
            Some(lin) => match self.slots[lin] {
                VACANT => None,
                id => Some(NodeId(id)),
            },
            None => self.spill.get(coords).copied(),
        }
    }

    /// Insert or overwrite; returns the previous occupant.
    fn insert(&mut self, coords: ChunkCoords, node: NodeId) -> Option<NodeId> {
        match self.linearize(&coords) {
            Some(lin) => {
                let prev = self.slots[lin];
                self.slots[lin] = node.0;
                if prev == VACANT {
                    self.resident += 1;
                    None
                } else {
                    Some(NodeId(prev))
                }
            }
            None => self.spill.insert(coords, node),
        }
    }

    /// Visit the occupied dense slots in ascending coordinate order
    /// (ascending row-major linear index *is* ascending lexicographic
    /// coordinate order). Stops as soon as all `resident` entries have
    /// been seen, so time-clustered occupancy scans only a prefix of the
    /// grid rather than its full registered volume.
    fn for_each_dense(&self, array: ArrayId, mut visit: impl FnMut((ChunkKey, NodeId))) {
        if self.resident == 0 {
            return;
        }
        let ndims = self.ndims as usize;
        let mut cur = ChunkCoords::zeros(ndims);
        let mut remaining = self.resident;
        for &slot in &self.slots {
            if slot != VACANT {
                visit((ChunkKey::new(array, cur), NodeId(slot)));
                remaining -= 1;
                if remaining == 0 {
                    return;
                }
            }
            // Odometer over the extents, row-major.
            for d in (0..ndims).rev() {
                cur[d] += 1;
                if cur[d] < self.extents[d] {
                    break;
                }
                cur[d] = 0;
            }
        }
    }

    /// Append every `(coords, node)` pair in ascending coordinate order.
    fn collect_sorted(&self, array: ArrayId, out: &mut Vec<(ChunkKey, NodeId)>) {
        if self.spill.is_empty() {
            out.reserve(self.resident);
            self.for_each_dense(array, |kv| out.push(kv));
            return;
        }
        let mut dense: Vec<(ChunkKey, NodeId)> = Vec::with_capacity(self.resident);
        self.for_each_dense(array, |kv| dense.push(kv));
        let mut spill: Vec<(ChunkKey, NodeId)> =
            self.spill.iter().map(|(&c, &n)| (ChunkKey::new(array, c), n)).collect();
        spill.sort_unstable_by_key(|a| a.0);
        // Merge the two sorted runs.
        let (mut di, mut si) = (0, 0);
        while di < dense.len() && si < spill.len() {
            if dense[di].0 <= spill[si].0 {
                out.push(dense[di]);
                di += 1;
            } else {
                out.push(spill[si]);
                si += 1;
            }
        }
        out.extend_from_slice(&dense[di..]);
        out.extend_from_slice(&spill[si..]);
    }
}

/// Per-array placement storage: sparse until registered dense.
#[derive(Debug, Clone)]
enum ArraySlot {
    Sparse(HashMap<ChunkCoords, NodeId>),
    Dense(DenseGrid),
}

impl ArraySlot {
    fn empty() -> Self {
        ArraySlot::Sparse(HashMap::new())
    }
}

/// The authoritative chunk→node map across all arrays.
#[derive(Debug, Clone, Default)]
pub(crate) struct PlacementIndex {
    /// Indexed by `ArrayId.0` for ids below [`ARRAY_ID_CAP`].
    slots: Vec<ArraySlot>,
    /// Shared fallback for out-of-range array ids.
    overflow: HashMap<ChunkKey, NodeId>,
    len: usize,
}

impl PlacementIndex {
    pub(crate) fn new() -> Self {
        PlacementIndex::default()
    }

    /// Register the chunk-grid extents of `array`, switching it to the
    /// dense O(1) representation. Returns `true` when the dense grid was
    /// installed (extent product within the allocation cap, id in range).
    /// Existing placements are migrated. Unbounded dimensions should pass
    /// their expected chunk-count hint; coordinates beyond it spill to a
    /// hash map, so the hint affects only performance.
    pub(crate) fn register_dense(&mut self, array: ArrayId, extents: &[i64]) -> bool {
        assert!(
            !extents.is_empty() && extents.len() <= MAX_DIMS,
            "extents must cover 1..={MAX_DIMS} dimensions"
        );
        assert!(extents.iter().all(|&e| e >= 1), "extents must be positive");
        if array.0 >= ARRAY_ID_CAP {
            return false;
        }
        let volume: u128 = extents.iter().map(|&e| e as u128).product();
        if volume > DENSE_SLOT_CAP {
            return false;
        }
        let mut ext = [1i64; MAX_DIMS];
        ext[..extents.len()].copy_from_slice(extents);
        let mut grid = DenseGrid {
            extents: ext,
            ndims: extents.len() as u8,
            slots: vec![VACANT; volume as usize],
            resident: 0,
            spill: HashMap::new(),
        };
        let slot = self.slot_mut(array);
        if let ArraySlot::Sparse(existing) = slot {
            for (coords, node) in existing.drain() {
                grid.insert(coords, node);
            }
            *slot = ArraySlot::Dense(grid);
            true
        } else {
            // Already dense: keep the existing grid (re-registration with
            // different extents would have to re-linearize; no caller
            // needs that).
            false
        }
    }

    fn slot_mut(&mut self, array: ArrayId) -> &mut ArraySlot {
        let idx = array.0 as usize;
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, ArraySlot::empty);
        }
        &mut self.slots[idx]
    }

    #[inline]
    pub(crate) fn get(&self, key: &ChunkKey) -> Option<NodeId> {
        if key.array.0 >= ARRAY_ID_CAP {
            return self.overflow.get(key).copied();
        }
        match self.slots.get(key.array.0 as usize)? {
            ArraySlot::Sparse(map) => map.get(&key.coords).copied(),
            ArraySlot::Dense(grid) => grid.get(&key.coords),
        }
    }

    /// Insert or overwrite; returns the previous occupant.
    #[inline]
    pub(crate) fn insert(&mut self, key: ChunkKey, node: NodeId) -> Option<NodeId> {
        let prev = if key.array.0 >= ARRAY_ID_CAP {
            self.overflow.insert(key, node)
        } else {
            match self.slot_mut(key.array) {
                ArraySlot::Sparse(map) => map.insert(key.coords, node),
                ArraySlot::Dense(grid) => grid.insert(key.coords, node),
            }
        };
        if prev.is_none() {
            self.len += 1;
        }
        prev
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Every `(key, node)` pair in ascending key order — the same
    /// deterministic order the old `BTreeMap` iteration produced.
    /// O(n) for registered (dense) arrays plus O(s log s) over sparse
    /// entries; intended for reorganization and reporting, not the
    /// per-chunk hot path.
    pub(crate) fn collect_sorted(&self) -> Vec<(ChunkKey, NodeId)> {
        let mut out = Vec::with_capacity(self.len);
        for (idx, slot) in self.slots.iter().enumerate() {
            let array = ArrayId(idx as u32);
            match slot {
                ArraySlot::Sparse(map) => {
                    let start = out.len();
                    out.extend(map.iter().map(|(&c, &n)| (ChunkKey::new(array, c), n)));
                    out[start..].sort_unstable_by_key(|a| a.0);
                }
                ArraySlot::Dense(grid) => grid.collect_sorted(array, &mut out),
            }
        }
        if !self.overflow.is_empty() {
            let start = out.len();
            out.extend(self.overflow.iter().map(|(&k, &n)| (k, n)));
            out[start..].sort_unstable_by_key(|a| a.0);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(array: u32, coords: &[i64]) -> ChunkKey {
        ChunkKey::new(ArrayId(array), ChunkCoords::new(coords))
    }

    #[test]
    fn sparse_roundtrip() {
        let mut idx = PlacementIndex::new();
        assert_eq!(idx.get(&key(0, &[1, 2])), None);
        assert_eq!(idx.insert(key(0, &[1, 2]), NodeId(3)), None);
        assert_eq!(idx.get(&key(0, &[1, 2])), Some(NodeId(3)));
        assert_eq!(idx.insert(key(0, &[1, 2]), NodeId(5)), Some(NodeId(3)));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn dense_registration_migrates_existing_entries() {
        let mut idx = PlacementIndex::new();
        idx.insert(key(0, &[1, 1]), NodeId(7));
        assert!(idx.register_dense(ArrayId(0), &[4, 4]));
        assert_eq!(idx.get(&key(0, &[1, 1])), Some(NodeId(7)));
        idx.insert(key(0, &[3, 2]), NodeId(1));
        assert_eq!(idx.get(&key(0, &[3, 2])), Some(NodeId(1)));
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn dense_spills_beyond_extents() {
        let mut idx = PlacementIndex::new();
        assert!(idx.register_dense(ArrayId(1), &[4, 4]));
        idx.insert(key(1, &[100, 0]), NodeId(2)); // beyond the hint
        idx.insert(key(1, &[-1, 0]), NodeId(4)); // negative -> spill
        assert_eq!(idx.get(&key(1, &[100, 0])), Some(NodeId(2)));
        assert_eq!(idx.get(&key(1, &[-1, 0])), Some(NodeId(4)));
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn oversized_grids_stay_sparse() {
        let mut idx = PlacementIndex::new();
        assert!(!idx.register_dense(ArrayId(0), &[1 << 20, 1 << 20]));
        idx.insert(key(0, &[9, 9]), NodeId(0));
        assert_eq!(idx.get(&key(0, &[9, 9])), Some(NodeId(0)));
    }

    #[test]
    fn huge_array_ids_use_the_overflow_map() {
        let mut idx = PlacementIndex::new();
        let k = key(u32::MAX - 1, &[0]);
        assert!(!idx.register_dense(ArrayId(u32::MAX - 1), &[8]));
        assert_eq!(idx.insert(k, NodeId(1)), None);
        assert_eq!(idx.get(&k), Some(NodeId(1)));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn collect_sorted_is_globally_ordered() {
        let mut idx = PlacementIndex::new();
        idx.register_dense(ArrayId(1), &[4, 4]);
        idx.insert(key(1, &[2, 1]), NodeId(0));
        idx.insert(key(1, &[0, 3]), NodeId(1));
        idx.insert(key(1, &[9, 9]), NodeId(2)); // spill
        idx.insert(key(0, &[5]), NodeId(3)); // sparse array
        idx.insert(key(u32::MAX - 1, &[1]), NodeId(4)); // overflow id
        let all = idx.collect_sorted();
        assert_eq!(all.len(), idx.len());
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "unsorted: {all:?}");
    }
}
