//! The simulated shared-nothing cluster: node roster plus chunk placement.

use crate::cost::CostModel;
use crate::error::{ClusterError, Result};
use crate::node::{Node, NodeId, NodeState};
use crate::placement::{
    key_hash, splitmix64, DenseMeta, PlacementIndex, PlacementShard, SHARD_COUNT,
};
use crate::rebalance::RebalancePlan;
use crate::transfer::FlowSet;
use array_model::{ArrayId, Chunk, ChunkDescriptor, ChunkKey};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Salt mixed into the chunk-key hash so the replica ring start is
/// decorrelated from the spill-shard and diversion hashes of the same key.
const REPLICA_ROUTE_SALT: u64 = 0x9e37_79b9_85eb_ca77;

/// Running moments of the per-node byte loads, maintained incrementally so
/// the balance census after every insert is O(1) instead of a rescan of
/// every host (the paper's per-insert RSD probe, made cheap).
///
/// Exact in integers: with total stored bytes below 2^64 (guaranteed by
/// the `u64` byte ledgers), `n·Σx² − (Σx)²` fits in `u128`, so uniform
/// loads yield exactly zero variance — no floating-point cancellation.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct BalanceStats {
    /// Σ load over nodes.
    sum: u128,
    /// Σ load² over nodes.
    sumsq: u128,
}

impl BalanceStats {
    #[inline]
    pub(crate) fn on_change(&mut self, old: u64, new: u64) {
        self.sum = self.sum - u128::from(old) + u128::from(new);
        self.sumsq =
            self.sumsq - u128::from(old) * u128::from(old) + u128::from(new) * u128::from(new);
    }

    /// Population relative standard deviation over `n` nodes.
    fn rsd(&self, n: usize) -> f64 {
        if n == 0 || self.sum == 0 {
            return 0.0;
        }
        // rsd = sqrt(var)/mean = sqrt(n·Σx² − (Σx)²) / Σx.
        let num = (n as u128 * self.sumsq).saturating_sub(self.sum * self.sum);
        (num as f64).sqrt() / self.sum as f64
    }
}

/// What one shard-phase worker reports back from a parallel batch.
struct ShardWorkerOut {
    /// Per-node byte deltas contributed by this worker's shards — the
    /// mergeable census moments of the sharded ingest path.
    deltas: Vec<u64>,
    /// Chunks inserted by this worker.
    inserted: usize,
    /// `(shard index, completed inserts)` per processed shard, for
    /// duplicate rollback.
    progress: Vec<(usize, usize)>,
    /// Lowest batch index whose key was already resident, if any.
    duplicate: Option<usize>,
}

/// Shard-phase worker: writes the placement slabs / spill maps of the
/// shards it exclusively owns. On a duplicate it stops that shard (later
/// entries stay uninserted) and records the batch index; other shards
/// still complete so the rollback bookkeeping stays uniform.
fn place_shards(
    dense: &[Option<DenseMeta>],
    batch: &[ChunkDescriptor],
    routes: &[NodeId],
    buckets: &[Vec<u32>],
    shards: Vec<(usize, &mut PlacementShard)>,
    node_count: usize,
) -> ShardWorkerOut {
    let mut out = ShardWorkerOut {
        deltas: vec![0; node_count],
        inserted: 0,
        progress: Vec::with_capacity(shards.len()),
        duplicate: None,
    };
    for (s, shard) in shards {
        let mut done = 0usize;
        for &i in &buckets[s] {
            let i = i as usize;
            let desc = &batch[i];
            match shard.try_insert(dense, desc.key, routes[i]) {
                Ok(()) => {
                    done += 1;
                    out.deltas[routes[i].0 as usize] += desc.bytes;
                }
                Err(_occupant) => {
                    // Bucket order follows batch order, so the first hit
                    // per shard is that shard's earliest duplicate; the
                    // minimum across shards is the batch's earliest.
                    out.duplicate = Some(out.duplicate.map_or(i, |d| d.min(i)));
                    break;
                }
            }
        }
        out.inserted += done;
        out.progress.push((s, done));
    }
    out
}

/// Node-phase worker: admit the descriptors at `indices` (all routed into
/// `group`'s contiguous node-id range starting at `lo`). Byte loads are
/// NOT applied here — the census merge folds them in afterwards.
fn admit_group(
    batch: &[ChunkDescriptor],
    routes: &[NodeId],
    indices: &[u32],
    group: &mut [Node],
    lo: usize,
) {
    for &i in indices {
        let i = i as usize;
        group[routes[i].0 as usize - lo].admit_descriptor(batch[i]);
    }
}

/// The cluster: an append-only roster of nodes and the authoritative
/// chunk→node placement map.
///
/// The first node doubles as the **coordinator** (§3.4: "inserts are
/// submitted to a coordinator node, and it distributes the incoming chunks
/// over the entire cluster").
///
/// Placement lookups and inserts are O(1) and allocation-free for arrays
/// registered via [`Cluster::register_array`]; unregistered arrays fall
/// back to hashing. The per-insert balance census ([`Cluster::balance_rsd`])
/// is O(1) thanks to incrementally maintained load moments.
#[derive(Debug, Clone)]
pub struct Cluster {
    pub(crate) nodes: Vec<Node>,
    pub(crate) placement: PlacementIndex,
    pub(crate) cost: CostModel,
    pub(crate) balance: BalanceStats,
    /// Replication factor `k`: total copies (primary + k−1 replicas) each
    /// placed chunk targets. `1` (the default) is the pre-replication
    /// behavior, bit-for-bit.
    pub(crate) replication: usize,
    /// Authoritative replica-holder index: which nodes carry a secondary
    /// copy of each chunk, in replica-route order. Kept in lockstep with
    /// the per-node replica stores ([`Cluster::verify_replica_books`]).
    /// Empty at `k = 1`.
    pub(crate) replicas: BTreeMap<ChunkKey, Vec<NodeId>>,
    /// Nodes in the terminal `Retired` state. They keep their roster slot
    /// (node ids are join-order indices and every hash route takes
    /// `nodes.len()` as its modulus) but leave every census denominator;
    /// tracked as a counter so [`Cluster::balance_rsd`] stays O(1).
    pub(crate) retired: usize,
}

impl Cluster {
    /// A cluster of `node_count` empty nodes of equal `capacity_bytes`.
    pub fn new(node_count: usize, capacity_bytes: u64, cost: CostModel) -> Result<Self> {
        Cluster::with_replication(node_count, capacity_bytes, cost, 1)
    }

    /// Like [`Cluster::new`], with a replication factor `k` (clamped to
    /// ≥ 1): every subsequently placed chunk targets `k` copies on `k`
    /// distinct nodes — the primary where the partitioner routed it, plus
    /// `k−1` replicas on a deterministic secondary route derived from the
    /// chunk key. Fewer eligible nodes than `k` means fewer copies (the
    /// census reflects the effective target).
    pub fn with_replication(
        node_count: usize,
        capacity_bytes: u64,
        cost: CostModel,
        replication: usize,
    ) -> Result<Self> {
        if node_count == 0 {
            return Err(ClusterError::EmptyCluster);
        }
        let nodes = (0..node_count as u32).map(|i| Node::new(NodeId(i), capacity_bytes)).collect();
        Ok(Cluster {
            nodes,
            placement: PlacementIndex::new(),
            cost,
            balance: BalanceStats::default(),
            replication: replication.max(1),
            replicas: BTreeMap::new(),
            retired: 0,
        })
    }

    /// The replication factor `k` in force.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Register the chunk-grid extents of an array so its placements use
    /// the dense O(1) index. Optional — unregistered arrays work through a
    /// hash fallback — and a performance hint only: coordinates beyond the
    /// extents (unbounded dimensions outgrowing the hint) spill to a hash
    /// map transparently. Returns whether the dense grid was installed.
    pub fn register_array(&mut self, array: ArrayId, chunk_extents: &[i64]) -> bool {
        self.placement.register_dense(array, chunk_extents)
    }

    /// The cost model in force.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The coordinator node: the first node still in service (§3.4's
    /// insert distributor). With no faults this is always node 0, the
    /// pre-fault behavior; after node 0 crashes the next serving node in
    /// join order deterministically takes over.
    pub fn coordinator(&self) -> NodeId {
        self.nodes.iter().find(|n| n.state().serves_reads()).map_or(self.nodes[0].id, |n| n.id)
    }

    /// Whether any node is out of full service — the cheap guard callers
    /// check before paying for route diversion or failover scans.
    pub fn has_faulted_nodes(&self) -> bool {
        self.nodes.iter().any(|n| n.state() != NodeState::Healthy)
    }

    /// Transition a `Healthy` node to `Draining`: it keeps serving reads
    /// but stops accepting placements, replicas, and repairs — the
    /// scale-IN preparation state.
    pub fn start_draining(&mut self, id: NodeId) -> Result<()> {
        let node = self.nodes.get_mut(id.0 as usize).ok_or(ClusterError::UnknownNode(id.0))?;
        if node.state() != NodeState::Healthy {
            return Err(ClusterError::NodeUnavailable { node: id.0, state: node.state() });
        }
        node.set_state(NodeState::Draining);
        Ok(())
    }

    /// Revive a `Crashed` node into `Recovering`: it rejoins empty,
    /// accepts data again (that is how it refills), and serves what it
    /// holds until [`Cluster::mark_recovered`] promotes it.
    pub fn revive_node(&mut self, id: NodeId) -> Result<()> {
        let node = self.nodes.get_mut(id.0 as usize).ok_or(ClusterError::UnknownNode(id.0))?;
        if node.state() != NodeState::Crashed {
            return Err(ClusterError::NodeUnavailable { node: id.0, state: node.state() });
        }
        node.set_state(NodeState::Recovering);
        Ok(())
    }

    /// Return a `Recovering` (or `Draining`, cancelling the drain) node
    /// to full `Healthy` service.
    pub fn mark_recovered(&mut self, id: NodeId) -> Result<()> {
        let node = self.nodes.get_mut(id.0 as usize).ok_or(ClusterError::UnknownNode(id.0))?;
        match node.state() {
            NodeState::Recovering | NodeState::Draining => {
                node.set_state(NodeState::Healthy);
                Ok(())
            }
            state => Err(ClusterError::NodeUnavailable { node: id.0, state }),
        }
    }

    /// Current node count, retired slots included (the roster is
    /// append-only; see [`Cluster::active_node_count`] for the census
    /// denominator).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Nodes still part of the working set — everything not `Retired`.
    /// O(1): the denominator of [`Cluster::balance_rsd`] and the count a
    /// provisioner sizes the cluster by after scale-IN.
    pub fn active_node_count(&self) -> usize {
        self.nodes.len() - self.retired
    }

    /// Node ids in join order.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.nodes.iter().map(|n| n.id).collect()
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> Result<&Node> {
        self.nodes.get(id.0 as usize).ok_or(ClusterError::UnknownNode(id.0))
    }

    /// Iterate all nodes in join order.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter()
    }

    /// Append `count` fresh nodes; returns their ids.
    pub fn add_nodes(&mut self, count: usize, capacity_bytes: u64) -> Vec<NodeId> {
        let mut added = Vec::with_capacity(count);
        for _ in 0..count {
            let id = NodeId(self.nodes.len() as u32);
            self.nodes.push(Node::new(id, capacity_bytes));
            added.push(id);
        }
        // New nodes carry zero load: Σx and Σx² are unchanged.
        added
    }

    /// Where a chunk lives, if resident. O(1).
    pub fn locate(&self, key: &ChunkKey) -> Option<NodeId> {
        self.placement.get(key)
    }

    /// Place a brand-new chunk on `node`. O(1) and allocation-free for
    /// registered arrays at `k = 1`; with `k ≥ 2` the chunk's replica set
    /// is admitted on its deterministic secondary route as well.
    pub fn place(&mut self, desc: ChunkDescriptor, node: NodeId) -> Result<()> {
        let n = self.nodes.get_mut(node.0 as usize).ok_or(ClusterError::UnknownNode(node.0))?;
        if !n.state().accepts_data() {
            return Err(ClusterError::NodeUnavailable { node: node.0, state: n.state() });
        }
        if self.placement.get(&desc.key).is_some() {
            return Err(ClusterError::DuplicateChunk(desc.key));
        }
        self.placement.insert(desc.key, node);
        let old = n.used_bytes();
        n.admit(desc);
        let new = n.used_bytes();
        self.balance.on_change(old, new);
        if self.replication > 1 {
            self.place_replicas(&desc);
        }
        Ok(())
    }

    /// Admit `desc`'s replica set on the chunk's deterministic secondary
    /// route: a ring walk from a salted hash of the key, skipping the
    /// primary and every node not accepting data. Places up to `k−1`
    /// copies — fewer when the roster is too small, which the census
    /// reports as the effective target.
    fn place_replicas(&mut self, desc: &ChunkDescriptor) {
        let Some(primary) = self.placement.get(&desc.key) else { return };
        let len = self.nodes.len();
        let want = self.replication - 1;
        let start = self.replica_ring_start(&desc.key);
        let mut holders: Vec<NodeId> = Vec::with_capacity(want);
        for step in 0..len {
            if holders.len() == want {
                break;
            }
            let idx = (start + step) % len;
            let cand = self.nodes[idx].id;
            if cand == primary || !self.nodes[idx].state().accepts_data() {
                continue;
            }
            self.nodes[idx].admit_replica(*desc);
            holders.push(cand);
        }
        if !holders.is_empty() {
            self.replicas.insert(desc.key, holders);
        }
    }

    /// Which nodes hold a secondary copy of `key`, in replica-route
    /// order. Empty at `k = 1` or for unreplicated chunks. O(log n) and
    /// allocation-free — safe on failover read paths.
    pub fn replica_holders(&self, key: &ChunkKey) -> &[NodeId] {
        self.replicas.get(key).map_or(&[], |v| v.as_slice())
    }

    /// Number of coordinate-range shards the placement index maintains —
    /// the upper bound on useful `place_batch` parallelism.
    pub fn ingest_shard_count(&self) -> usize {
        SHARD_COUNT
    }

    /// Place a whole routed batch (`batch[i]` → `routes[i]`), fanning the
    /// work out over up to `threads` OS threads.
    ///
    /// The batch is partitioned by placement shard (a pure function of
    /// each chunk key, see [`crate::placement::PlacementIndex::shard_of`])
    /// and executed in three phases:
    ///
    /// 1. **shard phase** — one worker per shard group writes the dense
    ///    slabs / spill maps it exclusively owns and accumulates per-shard
    ///    per-node byte deltas;
    /// 2. **node phase** — workers over disjoint node ranges admit the
    ///    descriptors into each node's store;
    /// 3. **census merge** — the per-shard deltas fold into the byte
    ///    ledgers and the incremental balance moments in
    ///    O(shards × nodes), exactly (integer moments), so
    ///    [`Cluster::balance_rsd`] stays O(1) and bit-identical to the
    ///    sequential path.
    ///
    /// `threads == 1` runs the same phases inline, producing bit-identical
    /// state to per-chunk [`Cluster::place`] calls over the batch.
    ///
    /// On a duplicate chunk the batch is **rolled back** entirely and the
    /// first (lowest-index) offending key is returned, leaving the cluster
    /// unchanged.
    pub fn place_batch(
        &mut self,
        batch: &[ChunkDescriptor],
        routes: &[NodeId],
        threads: usize,
    ) -> Result<()> {
        assert_eq!(batch.len(), routes.len(), "each chunk needs exactly one route");
        if batch.is_empty() {
            return Ok(());
        }
        let node_count = self.nodes.len();
        if let Some(bad) = routes.iter().find(|r| r.0 as usize >= node_count) {
            return Err(ClusterError::UnknownNode(bad.0));
        }
        if self.has_faulted_nodes() {
            if let Some(bad) =
                routes.iter().find(|r| !self.nodes[r.0 as usize].state().accepts_data())
            {
                let state = self.nodes[bad.0 as usize].state();
                return Err(ClusterError::NodeUnavailable { node: bad.0, state });
            }
        }
        // Bucket batch indices by owning shard (pure in the key, so the
        // partition is identical whatever the thread count).
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); SHARD_COUNT];
        for (i, desc) in batch.iter().enumerate() {
            buckets[self.placement.shard_of(&desc.key)].push(i as u32);
        }
        let workers = threads.clamp(1, SHARD_COUNT);

        // Phase 1: single-writer shard workers.
        let (dense, shards) = self.placement.parts_mut();
        let outs: Vec<ShardWorkerOut> = if workers == 1 {
            let all: Vec<(usize, &mut PlacementShard)> = shards.iter_mut().enumerate().collect();
            vec![place_shards(dense, batch, routes, &buckets, all, node_count)]
        } else {
            let mut assign: Vec<Vec<(usize, &mut PlacementShard)>> =
                (0..workers).map(|_| Vec::new()).collect();
            for (s, shard) in shards.iter_mut().enumerate() {
                assign[s % workers].push((s, shard));
            }
            std::thread::scope(|scope| {
                let handles: Vec<_> = assign
                    .into_iter()
                    .map(|set| {
                        let buckets = &buckets;
                        scope.spawn(move || {
                            place_shards(dense, batch, routes, buckets, set, node_count)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("shard worker panicked")).collect()
            })
        };
        if let Some(dup) = outs.iter().filter_map(|o| o.duplicate).min() {
            let progress: Vec<(usize, usize)> =
                outs.iter().flat_map(|o| o.progress.iter().copied()).collect();
            let keys: Vec<ChunkKey> = batch.iter().map(|d| d.key).collect();
            self.placement.rollback(&keys, &buckets, &progress);
            return Err(ClusterError::DuplicateChunk(batch[dup].key));
        }
        let inserted: usize = outs.iter().map(|o| o.inserted).sum();
        debug_assert_eq!(inserted, batch.len(), "every fresh chunk inserts exactly once");
        self.placement.add_len(inserted);

        // Phase 2: descriptor admission over disjoint node ranges.
        if workers == 1 || node_count == 1 {
            for (desc, node) in batch.iter().zip(routes) {
                self.nodes[node.0 as usize].admit_descriptor(*desc);
            }
        } else {
            // One bucketing pass keeps total work O(batch + nodes): each
            // worker walks only the indices routed into its node group.
            let group_size = node_count.div_ceil(workers);
            let mut node_buckets: Vec<Vec<u32>> = vec![Vec::new(); node_count.div_ceil(group_size)];
            for (i, node) in routes.iter().enumerate() {
                node_buckets[node.0 as usize / group_size].push(i as u32);
            }
            std::thread::scope(|scope| {
                for ((g, group), indices) in
                    self.nodes.chunks_mut(group_size).enumerate().zip(&node_buckets)
                {
                    scope.spawn(move || admit_group(batch, routes, indices, group, g * group_size));
                }
            });
        }

        // Phase 3: census merge — fold the per-shard per-node deltas into
        // the byte ledgers and the incremental balance moments. Integer
        // sums commute, so the final moments are bit-identical to what
        // per-chunk sequential placement would have produced.
        for idx in 0..node_count {
            let delta: u64 = outs.iter().map(|o| o.deltas[idx]).sum();
            if delta > 0 {
                let node = &mut self.nodes[idx];
                let old = node.used_bytes();
                node.add_load(delta);
                self.balance.on_change(old, node.used_bytes());
            }
        }

        // Replica admission rides after the primary batch, sequentially:
        // the secondary route is a pure function of each key, so the
        // outcome is identical whatever the thread count, and the k=1
        // hot path never pays for it.
        if self.replication > 1 {
            for desc in batch {
                self.place_replicas(desc);
            }
        }
        Ok(())
    }

    /// Attach the materialized payload of an already-placed chunk to its
    /// resident node. The payload then follows the descriptor through
    /// every rebalance move. Fails when the chunk is not placed, or when
    /// the payload's actual [`Chunk::byte_size`] / [`Chunk::cell_count`]
    /// disagree with what the placed descriptor declares — the
    /// materialized ingest path derives descriptors *from* payloads, so a
    /// mismatch means the metadata model and the cells drifted apart.
    ///
    /// Accepts either an owned `Chunk` or a shared `Arc<Chunk>` handle.
    /// The ingest pipeline passes the handle the catalog oracle also
    /// holds, so attaching is a refcount bump — never a cell copy.
    ///
    /// With `k ≥ 2` the validated handle additionally fans out to every
    /// replica holder, each byte-validated against its own stored replica
    /// descriptor. All rejections — [`ClusterError::PayloadMismatch`] on
    /// primary or replica drift, [`ClusterError::PayloadExists`] on a
    /// double-attach, [`ClusterError::NodeUnavailable`] when the resident
    /// node crashed — are checked before any store mutates, so a failed
    /// attach leaves every book unchanged.
    pub fn attach_payload(&mut self, key: ChunkKey, chunk: impl Into<Arc<Chunk>>) -> Result<()> {
        let chunk = chunk.into();
        let node = self.placement.get(&key).ok_or(ClusterError::MissingChunk(key))?;
        let holder = &self.nodes[node.0 as usize];
        if !holder.state().serves_reads() {
            // k=1 orphan: the chunk's only copy sat on a node that has
            // since crashed; its placement entry still names the wreck.
            return Err(ClusterError::NodeUnavailable { node: node.0, state: holder.state() });
        }
        let desc = holder.descriptor(&key).expect("placement and node stores agree");
        Cluster::validate_payload(&key, desc, &chunk)?;
        if holder.has_payload(&key) {
            return Err(ClusterError::PayloadExists(key));
        }
        // Validate the whole replica fan-out before the first store.
        let holders = self.replicas.get(&key).map_or(&[][..], |v| v.as_slice());
        for &r in holders {
            let rn = &self.nodes[r.0 as usize];
            let rdesc = rn.replica_descriptor(&key).expect("replica index and node stores agree");
            Cluster::validate_payload(&key, rdesc, &chunk)?;
            if rn.replica_payload_shared(&key).is_some() {
                return Err(ClusterError::PayloadExists(key));
            }
        }
        // Field-level split borrow: `holders` borrows `self.replicas`,
        // the stores live in `self.nodes`.
        for &r in holders {
            self.nodes[r.0 as usize].store_replica_payload(key, Arc::clone(&chunk));
        }
        self.nodes[node.0 as usize].store_payload(key, chunk);
        Ok(())
    }

    fn validate_payload(key: &ChunkKey, desc: &ChunkDescriptor, chunk: &Chunk) -> Result<()> {
        if desc.bytes != chunk.byte_size() || desc.cells != chunk.cell_count() {
            return Err(ClusterError::PayloadMismatch(Box::new(crate::error::PayloadMismatch {
                key: *key,
                descriptor_bytes: desc.bytes,
                payload_bytes: chunk.byte_size(),
                descriptor_cells: desc.cells,
                payload_cells: chunk.cell_count(),
            })));
        }
        Ok(())
    }

    /// Attach a payload to one specific **replica** copy of `key` on
    /// `node` — the targeted form recovery uses when it re-materializes a
    /// single replica from a surviving source. Validates against that
    /// node's stored replica descriptor; every rejection
    /// ([`ClusterError::NotAReplica`], [`ClusterError::NodeUnavailable`],
    /// [`ClusterError::PayloadMismatch`], [`ClusterError::PayloadExists`])
    /// leaves books unchanged.
    pub fn attach_replica_payload(
        &mut self,
        key: ChunkKey,
        node: NodeId,
        chunk: impl Into<Arc<Chunk>>,
    ) -> Result<()> {
        let chunk = chunk.into();
        let n = self.nodes.get(node.0 as usize).ok_or(ClusterError::UnknownNode(node.0))?;
        if n.state() == NodeState::Crashed {
            return Err(ClusterError::NodeUnavailable { node: node.0, state: n.state() });
        }
        let desc =
            n.replica_descriptor(&key).ok_or(ClusterError::NotAReplica { key, node: node.0 })?;
        Cluster::validate_payload(&key, desc, &chunk)?;
        if n.replica_payload_shared(&key).is_some() {
            return Err(ClusterError::PayloadExists(key));
        }
        self.nodes[node.0 as usize].store_replica_payload(key, chunk);
        Ok(())
    }

    /// The materialized payload of a chunk, read from its resident node.
    pub fn payload(&self, key: &ChunkKey) -> Option<&Chunk> {
        let node = self.placement.get(key)?;
        self.nodes[node.0 as usize].payload(key)
    }

    /// The shared handle of a chunk's payload, read from its resident
    /// node — for proving zero-copy sharing with the catalog oracle
    /// (`Arc::ptr_eq`) or taking a cheap co-owning reference.
    pub fn payload_shared(&self, key: &ChunkKey) -> Option<&Arc<Chunk>> {
        let node = self.placement.get(key)?;
        self.nodes[node.0 as usize].payload_shared(key)
    }

    /// Number of chunks cluster-wide carrying a materialized payload.
    pub fn payload_count(&self) -> usize {
        self.nodes.iter().map(Node::payload_count).sum()
    }

    /// Failover-aware payload read: the primary copy when its node still
    /// serves reads, otherwise the first surviving replica copy in route
    /// order. `None` when no serving node holds the cells. Allocation-free
    /// — this sits on every degraded query read.
    pub fn read_payload(&self, key: &ChunkKey) -> Option<PayloadRead<'_>> {
        let primary = self.placement.get(key)?;
        let node = &self.nodes[primary.0 as usize];
        if node.state().serves_reads() {
            if let Some(chunk) = node.payload_shared(key) {
                return Some(PayloadRead::Primary(chunk));
            }
        }
        for &r in self.replica_holders(key) {
            let rn = &self.nodes[r.0 as usize];
            if rn.state().serves_reads() {
                if let Some(chunk) = rn.replica_payload_shared(key) {
                    return Some(PayloadRead::Failover(r, chunk));
                }
            }
        }
        None
    }

    /// Execute a rebalance plan, validating each move against the actual
    /// placement, and return the flow set that timed it.
    ///
    /// Replica sets move with their chunks: a destination already holding
    /// a replica of the moved chunk sheds it (the arriving primary
    /// supersedes it), and after the moves every relocated chunk's
    /// replica set is topped back up to `k−1` distinct copies, with the
    /// repair transfers pushed into the **same** returned [`FlowSet`] so
    /// reorganization time stays honest about replication upkeep.
    pub fn apply_rebalance(&mut self, plan: &RebalancePlan) -> Result<FlowSet> {
        // Validate first so a bad plan leaves the cluster untouched.
        for m in &plan.moves {
            let actual = self.placement.get(&m.key).ok_or(ClusterError::MissingChunk(m.key))?;
            if actual != m.from {
                return Err(ClusterError::WrongSource {
                    key: m.key,
                    claimed: m.from.0,
                    actual: actual.0,
                });
            }
            let Some(dst) = self.nodes.get(m.to.0 as usize) else {
                return Err(ClusterError::UnknownNode(m.to.0));
            };
            if !dst.state().accepts_data() {
                return Err(ClusterError::NodeUnavailable { node: m.to.0, state: dst.state() });
            }
            // A crashed source's chunks were wiped (its placement entries
            // may linger as k=1 orphans); moving one is impossible.
            if !self.nodes[m.from.0 as usize].holds(&m.key) {
                return Err(ClusterError::MissingChunk(m.key));
            }
        }
        let mut flows = FlowSet::new();
        for m in &plan.moves {
            let src = &mut self.nodes[m.from.0 as usize];
            let src_old = src.used_bytes();
            let (desc, payload) = src.evict(&m.key).expect("validated above");
            self.balance.on_change(src_old, src.used_bytes());
            // Materialized chunks time the wire transfer off the payload's
            // actual size (identical to desc.bytes by the attach-time
            // invariant, but read from the cells to keep the flow honest).
            flows.push(m.from, m.to, payload.as_ref().map_or(desc.bytes, |c| c.byte_size()));
            // The destination may hold a replica of this chunk; the
            // arriving primary supersedes it.
            if let Some(holders) = self.replicas.get_mut(&m.key) {
                if let Some(pos) = holders.iter().position(|&h| h == m.to) {
                    holders.remove(pos);
                    if holders.is_empty() {
                        self.replicas.remove(&m.key);
                    }
                    self.nodes[m.to.0 as usize].evict_replica(&m.key);
                }
            }
            self.placement.insert(m.key, m.to);
            let dst = &mut self.nodes[m.to.0 as usize];
            let dst_old = dst.used_bytes();
            dst.admit(desc);
            if let Some(chunk) = payload {
                dst.store_payload(m.key, chunk);
            }
            self.balance.on_change(dst_old, dst.used_bytes());
        }
        if self.replication > 1 {
            for m in &plan.moves {
                self.top_up_replicas(&m.key, &mut flows);
            }
        }
        Ok(flows)
    }

    /// Restore `key`'s replica set to `k−1` distinct copies after its
    /// primary moved: walk the chunk's deterministic replica ring for
    /// fresh eligible holders, copying descriptor (and payload handle)
    /// from the primary and recording one repair flow per new copy.
    fn top_up_replicas(&mut self, key: &ChunkKey, flows: &mut FlowSet) {
        let Some(primary) = self.placement.get(key) else { return };
        let Some(desc) = self.nodes[primary.0 as usize].descriptor(key).copied() else {
            return;
        };
        let payload = self.nodes[primary.0 as usize].payload_shared(key).cloned();
        let want = self.replication - 1;
        let have = self.replica_holders(key).len();
        if have >= want {
            return;
        }
        let len = self.nodes.len();
        let start = self.replica_ring_start(key);
        for step in 0..len {
            if self.replica_holders(key).len() >= want {
                break;
            }
            let idx = (start + step) % len;
            let cand = self.nodes[idx].id;
            if cand == primary
                || !self.nodes[idx].state().accepts_data()
                || self.replica_holders(key).contains(&cand)
            {
                continue;
            }
            self.nodes[idx].admit_replica(desc);
            if let Some(chunk) = &payload {
                self.nodes[idx].store_replica_payload(*key, Arc::clone(chunk));
            }
            flows.push(primary, cand, desc.bytes);
            self.replicas.entry(*key).or_default().push(cand);
        }
    }

    /// Crash `id`: wipe both of its stores (the failure model is
    /// fail-stop with total local-storage loss), mark it `Crashed`, and
    /// fail its lost primaries over to surviving replicas.
    ///
    /// For every lost primary with at least one surviving replica copy,
    /// the first holder in replica-route order is **promoted**
    /// deterministically: its replica descriptor/payload pair moves into
    /// its primary store, the placement index repoints, and the byte
    /// ledgers follow (promotion is a local bookkeeping flip — the bytes
    /// are already on the node — so it records no flow). Chunks with no
    /// surviving copy (`k = 1`, or deeper failures than `k−1`) are
    /// reported as orphaned; their placement entries keep naming the
    /// wreck so reads surface typed losses instead of silent misses.
    ///
    /// Refuses to crash the last serving node
    /// ([`ClusterError::NoHealthyNodes`]) or an already-crashed one.
    pub fn crash_node(&mut self, id: NodeId) -> Result<CrashReport> {
        let idx = id.0 as usize;
        let state = self.nodes.get(idx).ok_or(ClusterError::UnknownNode(id.0))?.state();
        if matches!(state, NodeState::Crashed | NodeState::Retired) {
            return Err(ClusterError::NodeUnavailable { node: id.0, state });
        }
        if !self.nodes.iter().any(|n| n.id != id && n.state().serves_reads()) {
            return Err(ClusterError::NoHealthyNodes);
        }
        let node = &mut self.nodes[idx];
        let primary_keys: Vec<ChunkKey> = node.descriptors().map(|d| d.key).collect();
        let replica_keys: Vec<ChunkKey> = node.replica_descriptors().map(|d| d.key).collect();
        let old_used = node.used_bytes();
        node.wipe();
        node.set_state(NodeState::Crashed);
        self.balance.on_change(old_used, 0);
        for key in &replica_keys {
            if let Some(holders) = self.replicas.get_mut(key) {
                holders.retain(|&h| h != id);
                if holders.is_empty() {
                    self.replicas.remove(key);
                }
            }
        }
        let mut promoted = 0usize;
        let mut orphaned = Vec::new();
        for key in &primary_keys {
            let holder = self.replicas.get(key).and_then(|h| h.first().copied());
            match holder {
                Some(h) => {
                    if let Some(holders) = self.replicas.get_mut(key) {
                        holders.remove(0);
                        if holders.is_empty() {
                            self.replicas.remove(key);
                        }
                    }
                    let hn = &mut self.nodes[h.0 as usize];
                    let (desc, payload) =
                        hn.evict_replica(key).expect("replica index and node stores agree");
                    let old = hn.used_bytes();
                    hn.admit(desc);
                    if let Some(chunk) = payload {
                        hn.store_payload(*key, chunk);
                    }
                    let new = hn.used_bytes();
                    self.balance.on_change(old, new);
                    self.placement.insert(*key, h);
                    promoted += 1;
                }
                None => orphaned.push(*key),
            }
        }
        Ok(CrashReport {
            node: id,
            lost_primaries: primary_keys.len(),
            promoted,
            dropped_replicas: replica_keys.len(),
            orphaned,
        })
    }

    /// Retract materialized cells from a placed chunk, on every copy: the
    /// primary payload is tombstoned through `Arc::make_mut`, the
    /// shrunken descriptor replaces the resident one (byte ledgers and
    /// the O(1) census moments follow the delta exactly), and every
    /// replica holder swaps in the same post-retraction handle and
    /// descriptor — so the attach-time invariant
    /// (`desc.bytes == chunk.byte_size()`) keeps holding on all `k`
    /// copies, and replicas stay a refcount bump, never a cell copy.
    ///
    /// `cells_flat` is row-major flattened cell coordinates at the chunk
    /// key's arity. Cells with no live match count as `missing` —
    /// retraction is idempotent, not an error. Requires the payload to be
    /// attached ([`ClusterError::NoPayload`] otherwise; metadata-scale
    /// runs shrink through [`Cluster::shrink_chunk`]) and the primary to
    /// actually hold the chunk (a k=1 orphan on a wreck cannot retract).
    pub fn retract_cells(&mut self, key: &ChunkKey, cells_flat: &[i64]) -> Result<ChunkRetraction> {
        let nd = key.coords.ndims().max(1);
        assert_eq!(cells_flat.len() % nd, 0, "flat cells must be a multiple of the arity");
        let node = self.placement.get(key).ok_or(ClusterError::MissingChunk(*key))?;
        let idx = node.0 as usize;
        if !self.nodes[idx].holds(key) {
            let state = self.nodes[idx].state();
            return Err(ClusterError::NodeUnavailable { node: node.0, state });
        }
        let mut out = ChunkRetraction::default();
        let n = &mut self.nodes[idx];
        let old_used = n.used_bytes();
        let Some(handle) = n.payload_mut(key) else {
            return Err(ClusterError::NoPayload(*key));
        };
        {
            let chunk = Arc::make_mut(handle);
            for cell in cells_flat.chunks_exact(nd) {
                match chunk.retract_cell(cell) {
                    Some(freed) => {
                        out.retracted += 1;
                        out.freed_bytes += freed;
                    }
                    None => out.missing += 1,
                }
            }
        }
        let fresh = Arc::clone(&*handle);
        let desc = ChunkDescriptor::new(*key, fresh.byte_size(), fresh.cell_count());
        out.remaining_cells = desc.cells;
        n.resize(desc).expect("holds() checked above");
        let new_used = n.used_bytes();
        self.balance.on_change(old_used, new_used);
        // Field-level split borrow: `holders` borrows `self.replicas`,
        // the stores live in `self.nodes`.
        let holders = self.replicas.get(key).map_or(&[][..], |v| v.as_slice());
        for &r in holders {
            let rn = &mut self.nodes[r.0 as usize];
            rn.resize_replica(desc).expect("replica index and node stores agree");
            if let Some(slot) = rn.replica_payload_mut(key) {
                *slot = Arc::clone(&fresh);
            }
        }
        Ok(out)
    }

    /// Compact a placed chunk's payload in place: rebuild it from its
    /// surviving rows (see `Chunk::compact`), dropping tombstones and
    /// dangling dictionary entries. The shrunken descriptor replaces the
    /// resident one on the primary and every replica copy, and every
    /// holder swaps in the same post-compaction handle — the same
    /// invariant discipline as [`Cluster::retract_cells`], so
    /// `desc.bytes == chunk.byte_size()` keeps holding on all `k`
    /// copies. This is the store-side half of the runner's automatic
    /// tombstone GC; the catalog oracle mirrors it with
    /// `Array::compact_chunk` so both copies stay structurally
    /// identical.
    pub fn compact_chunk(&mut self, key: &ChunkKey) -> Result<ChunkCompaction> {
        let node = self.placement.get(key).ok_or(ClusterError::MissingChunk(*key))?;
        let idx = node.0 as usize;
        if !self.nodes[idx].holds(key) {
            let state = self.nodes[idx].state();
            return Err(ClusterError::NodeUnavailable { node: node.0, state });
        }
        let n = &mut self.nodes[idx];
        let old_used = n.used_bytes();
        let Some(handle) = n.payload_mut(key) else {
            return Err(ClusterError::NoPayload(*key));
        };
        let reclaimed_bytes = Arc::make_mut(handle).compact();
        let fresh = Arc::clone(&*handle);
        let desc = ChunkDescriptor::new(*key, fresh.byte_size(), fresh.cell_count());
        n.resize(desc).expect("holds() checked above");
        let new_used = n.used_bytes();
        self.balance.on_change(old_used, new_used);
        let holders = self.replicas.get(key).map_or(&[][..], |v| v.as_slice());
        for &r in holders {
            let rn = &mut self.nodes[r.0 as usize];
            rn.resize_replica(desc).expect("replica index and node stores agree");
            if let Some(slot) = rn.replica_payload_mut(key) {
                *slot = Arc::clone(&fresh);
            }
        }
        Ok(ChunkCompaction { reclaimed_bytes, bytes: desc.bytes, cells: desc.cells })
    }

    /// Metadata-scale retraction: shrink (or grow) a placed chunk's
    /// descriptor to `bytes`/`cells` without touching payloads — there
    /// are none at paper scale. The placement entry stays; the byte
    /// ledgers and census moments follow the delta exactly, on the
    /// primary and every replica copy. If a payload *is* attached its
    /// actual size must agree ([`ClusterError::PayloadMismatch`]
    /// otherwise), so the metadata door cannot break the attach
    /// invariant.
    pub fn shrink_chunk(&mut self, key: &ChunkKey, bytes: u64, cells: u64) -> Result<()> {
        let node = self.placement.get(key).ok_or(ClusterError::MissingChunk(*key))?;
        let idx = node.0 as usize;
        if !self.nodes[idx].holds(key) {
            let state = self.nodes[idx].state();
            return Err(ClusterError::NodeUnavailable { node: node.0, state });
        }
        let desc = ChunkDescriptor::new(*key, bytes, cells);
        if let Some(chunk) = self.nodes[idx].payload_shared(key) {
            Cluster::validate_payload(key, &desc, chunk)?;
        }
        let n = &mut self.nodes[idx];
        let old = n.used_bytes();
        n.resize(desc).expect("holds() checked above");
        let new = n.used_bytes();
        self.balance.on_change(old, new);
        let holders = self.replicas.get(key).map_or(&[][..], |v| v.as_slice());
        for &r in holders {
            self.nodes[r.0 as usize]
                .resize_replica(desc)
                .expect("replica index and node stores agree");
        }
        Ok(())
    }

    /// Evict a chunk from the cluster entirely — placement entry, primary
    /// descriptor and payload, and every replica copy. The inverse of
    /// [`Cluster::place`] and the retraction path's end state: once a
    /// chunk's last live cell is gone, keeping it would pin a placement
    /// slot, descriptor bytes, and replica upkeep forever. The primary
    /// must actually hold the chunk (crashed-orphan entries fail typed).
    pub fn evict_chunk(&mut self, key: &ChunkKey) -> Result<ChunkEviction> {
        let node = self.placement.get(key).ok_or(ClusterError::MissingChunk(*key))?;
        let idx = node.0 as usize;
        if !self.nodes[idx].holds(key) {
            let state = self.nodes[idx].state();
            return Err(ClusterError::NodeUnavailable { node: node.0, state });
        }
        let n = &mut self.nodes[idx];
        let old = n.used_bytes();
        let (desc, _payload) = n.evict(key).expect("holds() checked above");
        let new = n.used_bytes();
        self.balance.on_change(old, new);
        self.placement.remove(key);
        let holders = self.replicas.remove(key).unwrap_or_default();
        for &h in &holders {
            self.nodes[h.0 as usize].evict_replica(key);
        }
        Ok(ChunkEviction {
            node,
            bytes: desc.bytes,
            cells: desc.cells,
            replicas_dropped: holders.len(),
        })
    }

    /// Plan the rebalance that empties `id` of primary chunks: each chunk
    /// (in ascending key order) goes to the least-loaded node that still
    /// accepts data, with earlier moves in the plan counted into the
    /// projected loads and ties broken toward the lower node id — the
    /// plan is deterministic and keeps the post-drain census tight. The
    /// node is typically `Draining`; the plan is only computed here,
    /// [`Cluster::apply_rebalance`] executes it through the same flow
    /// solver scale-OUT uses.
    pub fn plan_drain(&self, id: NodeId) -> Result<RebalancePlan> {
        let node = self.node(id)?;
        let mut projected: Vec<(u64, NodeId)> = self
            .nodes
            .iter()
            .filter(|n| n.id != id && n.state().accepts_data())
            .map(|n| (n.used_bytes(), n.id))
            .collect();
        if projected.is_empty() && node.chunk_count() > 0 {
            return Err(ClusterError::NoHealthyNodes);
        }
        let mut plan = RebalancePlan::empty();
        for desc in node.descriptors() {
            let dest = {
                let best = projected
                    .iter_mut()
                    .min_by_key(|e| (e.0, e.1 .0))
                    .expect("destinations checked nonempty above");
                best.0 += desc.bytes;
                best.1
            };
            plan.push(desc.key, id, dest, desc.bytes);
        }
        Ok(plan)
    }

    /// Retire a drained node — terminal scale-IN. The node must hold no
    /// primary chunks ([`ClusterError::RetireNonEmpty`]; run
    /// [`Cluster::plan_drain`] + [`Cluster::apply_rebalance`] first). Its
    /// replica copies are dropped with their ledgers, and the affected
    /// replica sets are topped back up on the shrunken roster; the repair
    /// transfers come back as a flow set so release time stays honest.
    ///
    /// The node keeps its roster **slot** — ids are join-order indices
    /// and every hash route takes `nodes.len()` as its modulus — but
    /// leaves every census denominator and never serves or accepts
    /// anything again. Refuses to retire the last serving node.
    pub fn retire_node(&mut self, id: NodeId) -> Result<FlowSet> {
        let idx = id.0 as usize;
        let node = self.nodes.get(idx).ok_or(ClusterError::UnknownNode(id.0))?;
        match node.state() {
            NodeState::Healthy | NodeState::Draining => {}
            state => return Err(ClusterError::NodeUnavailable { node: id.0, state }),
        }
        if node.chunk_count() > 0 {
            return Err(ClusterError::RetireNonEmpty { node: id.0, chunks: node.chunk_count() });
        }
        if !self.nodes.iter().any(|n| n.id != id && n.state().serves_reads()) {
            return Err(ClusterError::NoHealthyNodes);
        }
        let replica_keys: Vec<ChunkKey> =
            self.nodes[idx].replica_descriptors().map(|d| d.key).collect();
        for key in &replica_keys {
            if let Some(holders) = self.replicas.get_mut(key) {
                holders.retain(|&h| h != id);
                if holders.is_empty() {
                    self.replicas.remove(key);
                }
            }
            self.nodes[idx].evict_replica(key);
        }
        self.nodes[idx].set_state(NodeState::Retired);
        self.retired += 1;
        debug_assert_eq!(self.nodes[idx].used_bytes(), 0, "an empty node carries no load");
        let mut flows = FlowSet::new();
        if self.replication > 1 {
            for key in &replica_keys {
                self.top_up_replicas(key, &mut flows);
            }
        }
        Ok(flows)
    }

    /// Scale the cluster IN by one node, end to end:
    /// [`Cluster::start_draining`] → [`Cluster::plan_drain`] →
    /// [`Cluster::apply_rebalance`] (the same flow solver every scale-OUT
    /// reorganization uses) → [`Cluster::retire_node`]. On any failure
    /// along the way the drain is cancelled — the node returns to
    /// `Healthy` — and the error propagates, so a failed decommission
    /// always leaves a working cluster.
    pub fn decommission_node(&mut self, id: NodeId) -> Result<DecommissionReport> {
        self.start_draining(id)?;
        let mut run = || -> Result<DecommissionReport> {
            let plan = self.plan_drain(id)?;
            let moved_chunks = plan.len();
            let drained_bytes = plan.moved_bytes();
            let mut flows = self.apply_rebalance(&plan)?;
            let repair = self.retire_node(id)?;
            flows.merge(&repair);
            Ok(DecommissionReport { node: id, moved_chunks, drained_bytes, flows })
        };
        match run() {
            Ok(report) => Ok(report),
            Err(e) => {
                if self.nodes[id.0 as usize].state() == NodeState::Draining {
                    self.mark_recovered(id).expect("draining cancels back to healthy");
                }
                Err(e)
            }
        }
    }

    /// Deterministic stand-in for a route that targets an out-of-service
    /// node: ring-walk from the chunk-key hash to the first node that
    /// accepts data. `None` only when no node accepts data at all.
    pub fn divert_route(&self, key: &ChunkKey) -> Option<NodeId> {
        let len = self.nodes.len();
        let start = (key_hash(key) % len as u64) as usize;
        (0..len)
            .map(|step| &self.nodes[(start + step) % len])
            .find(|n| n.state().accepts_data())
            .map(|n| n.id)
    }

    /// Census of replica strength over every placed chunk: how many
    /// serving copies (primary + replicas) each chunk has versus the
    /// effective target `min(k, nodes able to host data)`.
    pub fn replica_census(&self) -> ReplicaCensus {
        let hosts = self.nodes.iter().filter(|n| n.state().accepts_data()).count();
        let target = self.replication.min(hosts.max(1));
        let mut census = ReplicaCensus { target, full: 0, under: 0, lost: 0 };
        for (key, node) in self.placement.collect_sorted() {
            let pn = &self.nodes[node.0 as usize];
            let mut copies = usize::from(pn.state().serves_reads() && pn.holds(&key));
            copies += self
                .replica_holders(&key)
                .iter()
                .filter(|r| self.nodes[r.0 as usize].state().serves_reads())
                .count();
            if copies == 0 {
                census.lost += 1;
            } else if copies < target {
                census.under += 1;
            } else {
                census.full += 1;
            }
        }
        census
    }

    /// Cross-check the replica-holder index against the per-node replica
    /// stores; the post-recovery consistency gate. Returns the first
    /// disagreement as a typed error.
    pub fn verify_replica_books(&self) -> Result<()> {
        for (key, holders) in &self.replicas {
            for &h in holders {
                let node = self.nodes.get(h.0 as usize).ok_or(ClusterError::UnknownNode(h.0))?;
                if !node.holds_replica(key) {
                    return Err(ClusterError::NotAReplica { key: *key, node: h.0 });
                }
            }
        }
        for node in &self.nodes {
            for desc in node.replica_descriptors() {
                let indexed = self.replicas.get(&desc.key).is_some_and(|h| h.contains(&node.id));
                if !indexed {
                    return Err(ClusterError::NotAReplica { key: desc.key, node: node.id.0 });
                }
            }
        }
        Ok(())
    }

    /// Per-node stored bytes, in join order. The input to every balance
    /// metric and to the skew-aware partitioners.
    pub fn loads(&self) -> Vec<u64> {
        self.nodes.iter().map(Node::used_bytes).collect()
    }

    /// Per-node chunk counts, in join order.
    pub fn chunk_counts(&self) -> Vec<usize> {
        self.nodes.iter().map(Node::chunk_count).collect()
    }

    /// Total bytes stored across the cluster. O(1).
    pub fn total_used(&self) -> u64 {
        self.balance.sum as u64
    }

    /// Total capacity across the active cluster (N × c). Retired nodes
    /// contribute nothing: their hardware has been released.
    pub fn total_capacity(&self) -> u64 {
        self.nodes.iter().filter(|n| !n.state().is_retired()).map(|n| n.capacity_bytes).sum()
    }

    /// The paper's balance census: relative standard deviation of per-node
    /// stored bytes. O(1) — maintained incrementally across placements and
    /// rebalances, so probing it after every insert costs nothing.
    /// Agrees exactly with [`crate::metrics::relative_std_dev`] over
    /// [`Cluster::loads`].
    /// Retired nodes leave the denominator: a shrunken cluster's census
    /// ranges over the nodes that can still hold data, so scale-IN does
    /// not deflate the RSD with permanently-zero loads.
    pub fn balance_rsd(&self) -> f64 {
        self.balance.rsd(self.active_node_count())
    }

    /// The most loaded node (by bytes); ties break toward the lower id.
    pub fn most_loaded(&self) -> NodeId {
        self.nodes
            .iter()
            .max_by(|a, b| a.used_bytes().cmp(&b.used_bytes()).then(b.id.0.cmp(&a.id.0)))
            .expect("cluster is never empty")
            .id
    }

    /// Number of resident chunks cluster-wide. O(1).
    pub fn total_chunks(&self) -> usize {
        self.placement.len()
    }

    /// Every `(key, node)` placement in deterministic (ascending key)
    /// order. Materializes a sorted snapshot — O(n) over dense-indexed
    /// arrays — so it belongs in reorganization and reporting paths, not
    /// per-chunk loops.
    pub fn placements(&self) -> impl Iterator<Item = (ChunkKey, NodeId)> {
        self.placement.collect_sorted().into_iter()
    }

    /// Start index of `key`'s deterministic replica ring — shared by
    /// placement-time replica routing, rebalance top-up, and recovery
    /// target selection so all three derive the same secondary route.
    pub(crate) fn replica_ring_start(&self, key: &ChunkKey) -> usize {
        (splitmix64(key_hash(key) ^ REPLICA_ROUTE_SALT) % self.nodes.len() as u64) as usize
    }
}

/// Where a failover-aware payload read was served from.
#[derive(Debug)]
pub enum PayloadRead<'a> {
    /// The primary copy on the chunk's placed node.
    Primary(&'a Arc<Chunk>),
    /// A surviving replica copy — a degraded read — and the node that
    /// served it.
    Failover(NodeId, &'a Arc<Chunk>),
}

impl<'a> PayloadRead<'a> {
    /// The served payload handle, whichever copy supplied it.
    pub fn chunk(&self) -> &'a Arc<Chunk> {
        match self {
            PayloadRead::Primary(c) => c,
            PayloadRead::Failover(_, c) => c,
        }
    }

    /// Whether the read had to fail over to a replica.
    pub fn is_degraded(&self) -> bool {
        matches!(self, PayloadRead::Failover(..))
    }
}

/// What a node crash cost, as reported by [`Cluster::crash_node`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashReport {
    /// The node that crashed.
    pub node: NodeId,
    /// Primary chunks resident there at the moment of the crash.
    pub lost_primaries: usize,
    /// Lost primaries failed over to a surviving replica copy.
    pub promoted: usize,
    /// Replica copies that vanished with the node.
    pub dropped_replicas: usize,
    /// Lost primaries with **no** surviving copy anywhere (k=1, or more
    /// simultaneous failures than `k−1`): their placement entries still
    /// name the crashed node so reads fail typed, never silently.
    pub orphaned: Vec<ChunkKey>,
}

/// What a cell retraction did to one placed chunk
/// ([`Cluster::retract_cells`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChunkRetraction {
    /// Cells tombstoned (each counted once, however many copies hold it).
    pub retracted: u64,
    /// Requested cells with no live match — already retracted or never
    /// inserted. Retraction is idempotent, not an error.
    pub missing: u64,
    /// Bytes freed on the primary copy (each replica ledger shrinks by
    /// the same amount).
    pub freed_bytes: u64,
    /// Live cells the chunk still holds afterwards.
    pub remaining_cells: u64,
}

/// What compacting a placed chunk reclaimed ([`Cluster::compact_chunk`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkCompaction {
    /// Byte-size delta (positive = bytes reclaimed; a spill reversal can
    /// make the rebuilt column marginally larger).
    pub reclaimed_bytes: i64,
    /// The chunk's byte size after the rebuild.
    pub bytes: u64,
    /// Live cells — unchanged by compaction.
    pub cells: u64,
}

/// What evicting a chunk dropped ([`Cluster::evict_chunk`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkEviction {
    /// The node the primary copy lived on.
    pub node: NodeId,
    /// Bytes the descriptor carried at eviction.
    pub bytes: u64,
    /// Cells the descriptor carried at eviction.
    pub cells: u64,
    /// Replica copies dropped alongside the primary.
    pub replicas_dropped: usize,
}

/// What one completed scale-IN decommission did
/// ([`Cluster::decommission_node`]).
#[derive(Debug, Clone)]
pub struct DecommissionReport {
    /// The node released.
    pub node: NodeId,
    /// Primary chunks rebalanced off it.
    pub moved_chunks: usize,
    /// Bytes those drain moves carried.
    pub drained_bytes: u64,
    /// Every transfer the decommission caused — the drain moves plus the
    /// replica top-ups that followed retirement — as one concurrent
    /// batch for timing.
    pub flows: FlowSet,
}

/// Replica-strength census over every placed chunk
/// ([`Cluster::replica_census`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaCensus {
    /// Effective per-chunk copy target: `min(k, nodes able to host data)`.
    pub target: usize,
    /// Chunks at or above the target number of serving copies.
    pub full: usize,
    /// Chunks below target but with at least one serving copy.
    pub under: usize,
    /// Chunks with no serving copy at all (data loss without the catalog
    /// oracle).
    pub lost: usize,
}

impl ReplicaCensus {
    /// Every placed chunk is at full replica strength.
    pub fn is_full_strength(&self) -> bool {
        self.under == 0 && self.lost == 0
    }

    /// Chunks below the effective copy target (degraded + lost).
    pub fn under_replicated(&self) -> usize {
        self.under + self.lost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::relative_std_dev;
    use array_model::{ArrayId, ChunkCoords};

    fn desc(i: i64, bytes: u64) -> ChunkDescriptor {
        ChunkDescriptor::new(ChunkKey::new(ArrayId(0), ChunkCoords::new([i])), bytes, 1)
    }

    fn cluster(n: usize) -> Cluster {
        Cluster::new(n, 1_000, CostModel::default()).unwrap()
    }

    #[test]
    fn rejects_empty_cluster() {
        assert!(Cluster::new(0, 1_000, CostModel::default()).is_err());
    }

    #[test]
    fn place_and_locate() {
        let mut c = cluster(2);
        c.place(desc(1, 100), NodeId(1)).unwrap();
        assert_eq!(c.locate(&desc(1, 0).key), Some(NodeId(1)));
        assert_eq!(c.loads(), vec![0, 100]);
        assert!(matches!(c.place(desc(1, 100), NodeId(0)), Err(ClusterError::DuplicateChunk(_))));
        assert!(matches!(c.place(desc(2, 100), NodeId(9)), Err(ClusterError::UnknownNode(9))));
    }

    #[test]
    fn add_nodes_assigns_sequential_ids() {
        let mut c = cluster(2);
        let added = c.add_nodes(2, 1_000);
        assert_eq!(added, vec![NodeId(2), NodeId(3)]);
        assert_eq!(c.node_count(), 4);
        assert_eq!(c.total_capacity(), 4_000);
    }

    #[test]
    fn rebalance_moves_and_validates() {
        let mut c = cluster(3);
        c.place(desc(1, 100), NodeId(0)).unwrap();
        c.place(desc(2, 50), NodeId(0)).unwrap();

        let mut plan = RebalancePlan::empty();
        plan.push(desc(1, 100).key, NodeId(0), NodeId(2), 100);
        let flows = c.apply_rebalance(&plan).unwrap();
        assert_eq!(flows.network_bytes(), 100);
        assert_eq!(c.locate(&desc(1, 0).key), Some(NodeId(2)));
        assert_eq!(c.loads(), vec![50, 0, 100]);

        // Wrong source is rejected and leaves state intact.
        let mut bad = RebalancePlan::empty();
        bad.push(desc(2, 50).key, NodeId(1), NodeId(2), 50);
        assert!(matches!(c.apply_rebalance(&bad), Err(ClusterError::WrongSource { .. })));
        assert_eq!(c.locate(&desc(2, 0).key), Some(NodeId(0)));

        // Missing chunk is rejected.
        let mut missing = RebalancePlan::empty();
        missing.push(desc(9, 1).key, NodeId(0), NodeId(1), 1);
        assert!(matches!(c.apply_rebalance(&missing), Err(ClusterError::MissingChunk(_))));
    }

    #[test]
    fn most_loaded_breaks_ties_low() {
        let mut c = cluster(3);
        c.place(desc(1, 100), NodeId(1)).unwrap();
        c.place(desc(2, 100), NodeId(2)).unwrap();
        assert_eq!(c.most_loaded(), NodeId(1));
        c.place(desc(3, 1), NodeId(2)).unwrap();
        assert_eq!(c.most_loaded(), NodeId(2));
    }

    #[test]
    fn atomic_validation_prevents_partial_application() {
        let mut c = cluster(3);
        c.place(desc(1, 10), NodeId(0)).unwrap();
        c.place(desc(2, 10), NodeId(1)).unwrap();
        let mut plan = RebalancePlan::empty();
        plan.push(desc(1, 10).key, NodeId(0), NodeId(2), 10); // fine
        plan.push(desc(2, 10).key, NodeId(0), NodeId(2), 10); // wrong source
        assert!(c.apply_rebalance(&plan).is_err());
        // first move must NOT have been applied
        assert_eq!(c.locate(&desc(1, 0).key), Some(NodeId(0)));
    }

    #[test]
    fn registered_arrays_use_the_dense_index_transparently() {
        let mut c = cluster(3);
        assert!(c.register_array(ArrayId(0), &[64]));
        for i in 0..64 {
            c.place(desc(i, 10), NodeId((i % 3) as u32)).unwrap();
        }
        // Beyond the hint: spills, still correct.
        c.place(desc(1000, 10), NodeId(0)).unwrap();
        assert_eq!(c.total_chunks(), 65);
        for i in 0..64 {
            assert_eq!(c.locate(&desc(i, 0).key), Some(NodeId((i % 3) as u32)));
        }
        assert_eq!(c.locate(&desc(1000, 0).key), Some(NodeId(0)));
        // Duplicate detection also works densely.
        assert!(matches!(c.place(desc(5, 1), NodeId(0)), Err(ClusterError::DuplicateChunk(_))));
        // placements() stays sorted.
        let keys: Vec<ChunkKey> = c.placements().map(|(k, _)| k).collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn incremental_rsd_matches_full_rescan() {
        let mut c = cluster(4);
        assert_eq!(c.balance_rsd(), 0.0);
        for i in 0..100 {
            let bytes = 1 + (i as u64 * 37) % 1000;
            c.place(desc(i, bytes), NodeId((i % 4) as u32)).unwrap();
            let expected = relative_std_dev(&c.loads());
            let got = c.balance_rsd();
            assert!(
                (got - expected).abs() < 1e-12,
                "after insert {i}: incremental {got} vs rescan {expected}"
            );
        }
        // And across a rebalance.
        let mut plan = RebalancePlan::empty();
        plan.push(desc(0, 0).key, NodeId(0), NodeId(3), 1);
        c.apply_rebalance(&plan).unwrap();
        assert!((c.balance_rsd() - relative_std_dev(&c.loads())).abs() < 1e-12);
    }

    /// Drive the same stream through per-chunk `place` and through
    /// `place_batch` at several thread counts; every observable (sorted
    /// placements, loads, census bits) must agree.
    #[test]
    fn place_batch_is_bit_identical_to_sequential_place() {
        let stream: Vec<(i64, u64, u32)> =
            (0..500).map(|i| (i, 1 + (i as u64 * 37) % 977, (i % 3) as u32)).collect();
        let mut seq = cluster(3);
        assert!(seq.register_array(ArrayId(0), &[400])); // tail of stream spills
        for &(i, bytes, node) in &stream {
            seq.place(desc(i, bytes), NodeId(node)).unwrap();
        }
        for threads in [1usize, 2, 4, 8] {
            let mut par = cluster(3);
            assert!(par.register_array(ArrayId(0), &[400]));
            let batch: Vec<ChunkDescriptor> =
                stream.iter().map(|&(i, bytes, _)| desc(i, bytes)).collect();
            let routes: Vec<NodeId> = stream.iter().map(|&(_, _, n)| NodeId(n)).collect();
            par.place_batch(&batch, &routes, threads).unwrap();
            assert_eq!(par.loads(), seq.loads(), "threads={threads}");
            assert_eq!(par.total_chunks(), seq.total_chunks(), "threads={threads}");
            assert_eq!(
                par.balance_rsd().to_bits(),
                seq.balance_rsd().to_bits(),
                "threads={threads}: census must be bit-identical"
            );
            let a: Vec<_> = par.placements().collect();
            let b: Vec<_> = seq.placements().collect();
            assert_eq!(a, b, "threads={threads}");
        }
    }

    #[test]
    fn place_batch_rolls_back_on_duplicates() {
        let mut c = cluster(2);
        assert!(c.register_array(ArrayId(0), &[64]));
        c.place(desc(5, 10), NodeId(0)).unwrap();
        let snapshot_loads = c.loads();
        // Batch with an in-batch duplicate AND a collision with chunk 5.
        let batch = vec![desc(1, 10), desc(2, 10), desc(5, 10), desc(2, 10)];
        let routes = vec![NodeId(0); 4];
        let err = c.place_batch(&batch, &routes, 2).unwrap_err();
        assert!(matches!(err, ClusterError::DuplicateChunk(k) if k == desc(5, 0).key
            || k == desc(2, 0).key));
        // Everything rolled back: only the preexisting chunk remains.
        assert_eq!(c.total_chunks(), 1);
        assert_eq!(c.loads(), snapshot_loads);
        assert_eq!(c.locate(&desc(5, 0).key), Some(NodeId(0)));
        assert_eq!(c.locate(&desc(1, 0).key), None);
        // The cluster still accepts a clean batch afterwards.
        c.place_batch(&[desc(1, 10), desc(2, 10)], &[NodeId(0), NodeId(1)], 2).unwrap();
        assert_eq!(c.total_chunks(), 3);
    }

    #[test]
    fn place_batch_validates_routes() {
        let mut c = cluster(2);
        let err = c.place_batch(&[desc(1, 1)], &[NodeId(7)], 1).unwrap_err();
        assert!(matches!(err, ClusterError::UnknownNode(7)));
        assert_eq!(c.total_chunks(), 0);
    }

    #[test]
    fn payloads_follow_rebalance_moves() {
        use array_model::{ArraySchema, Chunk, ScalarValue};
        let schema = ArraySchema::parse("A<v:double>[x=0:7,2]").unwrap();
        let mut chunk = Chunk::new(&schema, ChunkCoords::new([0]));
        chunk.push_cell(&schema, vec![1], vec![ScalarValue::Double(2.5)]).unwrap();
        let key = ChunkKey::new(ArrayId(0), ChunkCoords::new([0]));
        let desc = ChunkDescriptor::new(key, chunk.byte_size(), chunk.cell_count());
        let mut c = cluster(2);
        // Attaching to an unplaced chunk is rejected.
        assert!(matches!(c.attach_payload(key, chunk.clone()), Err(ClusterError::MissingChunk(_))));
        c.place(desc, NodeId(0)).unwrap();
        // A payload whose cells disagree with the descriptor is rejected.
        let mut fat = chunk.clone();
        fat.push_cell(&schema, vec![0], vec![ScalarValue::Double(1.0)]).unwrap();
        assert!(matches!(c.attach_payload(key, fat), Err(ClusterError::PayloadMismatch(_))));
        c.attach_payload(key, chunk.clone()).unwrap();
        assert_eq!(c.payload_count(), 1);
        assert_eq!(c.payload(&key).unwrap().cell_count(), 1);
        // A rebalance move carries the payload and times the flow off the
        // cells' actual bytes.
        let mut plan = RebalancePlan::empty();
        plan.push(key, NodeId(0), NodeId(1), desc.bytes);
        let flows = c.apply_rebalance(&plan).unwrap();
        assert_eq!(flows.network_bytes(), chunk.byte_size());
        assert_eq!(c.node(NodeId(0)).unwrap().payload_count(), 0);
        assert_eq!(c.node(NodeId(1)).unwrap().payload(&key), Some(&chunk));
        assert_eq!(c.payload(&key), Some(&chunk));

        // Equal bytes but a different cell count is still a drift. Under
        // the default dictionary encoding, one 12-char string weighs
        // exactly as much as two empty ones: (12+4) dictionary bytes +
        // one 4 B code + 8 coord bytes = 28, vs (0+4) + two codes + 16
        // coord bytes = 28. (The same equality held for plain storage,
        // 24 = 24 — the guard is encoding-independent.)
        let sschema = ArraySchema::parse("S<s:string>[x=0:7,8]").unwrap();
        let mut one = Chunk::new(&sschema, ChunkCoords::new([0]));
        one.push_cell(&sschema, vec![0], vec![ScalarValue::Str("abcdefghijkl".into())]).unwrap();
        let mut two = Chunk::new(&sschema, ChunkCoords::new([0]));
        two.push_cell(&sschema, vec![1], vec![ScalarValue::Str(String::new())]).unwrap();
        two.push_cell(&sschema, vec![2], vec![ScalarValue::Str(String::new())]).unwrap();
        assert_eq!(one.byte_size(), two.byte_size());
        let key2 = ChunkKey::new(ArrayId(1), ChunkCoords::new([0]));
        c.place(ChunkDescriptor::new(key2, one.byte_size(), one.cell_count()), NodeId(0)).unwrap();
        assert!(matches!(c.attach_payload(key2, two), Err(ClusterError::PayloadMismatch(_))));
        c.attach_payload(key2, one).unwrap();
    }

    /// Rebalance byte accounting over dictionary-encoded payloads: the
    /// descriptor (what placement and the census see) and the flow bytes
    /// (what transfer timing sees) both carry the **encoded** size —
    /// dictionary once plus 4 B per code — which is strictly below the
    /// plain representation of the same cells, and a plain-encoded twin
    /// of the chunk cannot masquerade as the encoded one.
    #[test]
    fn rebalance_accounts_encoded_bytes_for_dict_payloads() {
        use array_model::{ArraySchema, Chunk, ScalarValue, StringEncoding};
        let schema = ArraySchema::parse("D<r:string>[x=0:63,64]").unwrap();
        let mut chunk = Chunk::new(&schema, ChunkCoords::new([0]));
        let mut plain_twin =
            Chunk::with_encoding(&schema, ChunkCoords::new([0]), StringEncoding::Plain);
        for x in 0..32i64 {
            let v = format!("receiver-{}", x % 4); // 4 distinct, 32 rows
            chunk.push_cell(&schema, vec![x], vec![ScalarValue::Str(v.clone())]).unwrap();
            plain_twin.push_cell(&schema, vec![x], vec![ScalarValue::Str(v)]).unwrap();
        }
        // Encoded: 32 coords x 8 + 4 dictionary entries x (10+4) + 32
        // codes x 4 = 440; plain stores every value's payload: 704.
        assert_eq!(chunk.byte_size(), 32 * 8 + 4 * 14 + 32 * 4);
        assert_eq!(plain_twin.byte_size(), 32 * 8 + 32 * 14);
        assert!(chunk.byte_size() < plain_twin.byte_size());

        let key = ChunkKey::new(ArrayId(0), ChunkCoords::new([0]));
        let desc = ChunkDescriptor::new(key, chunk.byte_size(), chunk.cell_count());
        let mut c = cluster(2);
        c.place(desc, NodeId(0)).unwrap();
        // The plain twin's bytes disagree with the encoded descriptor:
        // attach validation catches the representation mismatch.
        assert!(matches!(c.attach_payload(key, plain_twin), Err(ClusterError::PayloadMismatch(_))));
        c.attach_payload(key, chunk.clone()).unwrap();
        // The move times off the encoded bytes, and the load ledger holds
        // exactly the encoded size on the receiving node.
        let mut plan = RebalancePlan::empty();
        plan.push(key, NodeId(0), NodeId(1), desc.bytes);
        let flows = c.apply_rebalance(&plan).unwrap();
        assert_eq!(flows.network_bytes(), chunk.byte_size());
        assert_eq!(c.node(NodeId(1)).unwrap().payload(&key), Some(&chunk));
        assert_eq!(c.loads()[1], chunk.byte_size());
    }

    fn payload_chunk() -> (array_model::ArraySchema, Chunk, ChunkKey, ChunkDescriptor) {
        use array_model::{ArraySchema, ScalarValue};
        let schema = ArraySchema::parse("A<v:double>[x=0:7,2]").unwrap();
        let mut chunk = Chunk::new(&schema, ChunkCoords::new([0]));
        chunk.push_cell(&schema, vec![1], vec![ScalarValue::Double(2.5)]).unwrap();
        let key = ChunkKey::new(ArrayId(0), ChunkCoords::new([0]));
        let desc = ChunkDescriptor::new(key, chunk.byte_size(), chunk.cell_count());
        (schema, chunk, key, desc)
    }

    #[test]
    fn replication_places_k_distinct_copies_deterministically() {
        let mk = || {
            let mut c = Cluster::with_replication(5, 1_000_000, CostModel::default(), 3).unwrap();
            for i in 0..40 {
                c.place(desc(i, 100), NodeId((i % 5) as u32)).unwrap();
            }
            c
        };
        let a = mk();
        let b = mk();
        for i in 0..40 {
            let key = desc(i, 0).key;
            let primary = a.locate(&key).unwrap();
            let holders = a.replica_holders(&key);
            assert_eq!(holders.len(), 2, "k=3 ⇒ two replicas");
            assert!(!holders.contains(&primary), "replicas avoid the primary");
            assert_ne!(holders[0], holders[1], "replicas land on distinct nodes");
            assert_eq!(holders, b.replica_holders(&key), "secondary route is deterministic");
        }
        a.verify_replica_books().unwrap();
        assert!(a.replica_census().is_full_strength());
        // Replica bytes stay out of the primary census: an identical k=1
        // cluster reports the same loads, total, and RSD bits.
        let mut k1 = Cluster::new(5, 1_000_000, CostModel::default()).unwrap();
        for i in 0..40 {
            k1.place(desc(i, 100), NodeId((i % 5) as u32)).unwrap();
        }
        assert_eq!(a.loads(), k1.loads());
        assert_eq!(a.total_used(), k1.total_used());
        assert_eq!(a.balance_rsd().to_bits(), k1.balance_rsd().to_bits());
    }

    #[test]
    fn attach_fans_out_to_every_replica() {
        let (_, chunk, key, d) = payload_chunk();
        let mut c = Cluster::with_replication(3, 1_000_000, CostModel::default(), 2).unwrap();
        c.place(d, NodeId(0)).unwrap();
        let shared: Arc<Chunk> = Arc::new(chunk);
        c.attach_payload(key, Arc::clone(&shared)).unwrap();
        let holder = c.replica_holders(&key)[0];
        let replica = c.node(holder).unwrap().replica_payload_shared(&key).unwrap();
        assert!(Arc::ptr_eq(replica, &shared), "fan-out shares the handle, never copies cells");
    }

    #[test]
    fn double_attach_is_rejected_and_books_unchanged() {
        let (_, chunk, key, d) = payload_chunk();
        let mut c = Cluster::with_replication(3, 1_000_000, CostModel::default(), 2).unwrap();
        c.place(d, NodeId(0)).unwrap();
        c.attach_payload(key, chunk.clone()).unwrap();
        let loads = c.loads();
        assert!(
            matches!(c.attach_payload(key, chunk), Err(ClusterError::PayloadExists(k)) if k == key)
        );
        assert_eq!(c.payload_count(), 1, "the original payload is untouched");
        assert_eq!(c.loads(), loads);
    }

    #[test]
    fn attach_to_crashed_node_is_rejected_and_books_unchanged() {
        let (_, chunk, key, d) = payload_chunk();
        let mut c = cluster(2);
        c.place(d, NodeId(1)).unwrap();
        c.crash_node(NodeId(1)).unwrap();
        let loads = c.loads();
        assert!(matches!(
            c.attach_payload(key, chunk),
            Err(ClusterError::NodeUnavailable { node: 1, .. })
        ));
        assert_eq!(c.payload_count(), 0);
        assert_eq!(c.loads(), loads);
    }

    #[test]
    fn replica_byte_mismatch_is_rejected_and_books_unchanged() {
        use array_model::ScalarValue;
        let (schema, chunk, key, d) = payload_chunk();
        let mut c = Cluster::with_replication(3, 1_000_000, CostModel::default(), 2).unwrap();
        c.place(d, NodeId(0)).unwrap();
        let holder = c.replica_holders(&key)[0];
        // A drifted payload aimed straight at the replica copy: the
        // replica's own stored descriptor catches the byte/cell mismatch.
        let mut fat = chunk.clone();
        fat.push_cell(&schema, vec![0], vec![ScalarValue::Double(9.0)]).unwrap();
        assert!(matches!(
            c.attach_replica_payload(key, holder, fat),
            Err(ClusterError::PayloadMismatch(_))
        ));
        assert!(c.node(holder).unwrap().replica_payload_shared(&key).is_none());
        // Targeting a node that holds no replica is a typed error too.
        let non_holder =
            c.node_ids().into_iter().find(|&n| n != holder && Some(n) != c.locate(&key)).unwrap();
        assert!(matches!(
            c.attach_replica_payload(key, non_holder, chunk.clone()),
            Err(ClusterError::NotAReplica { .. })
        ));
        // The well-formed attach still lands, and a second one is a
        // double-attach on the replica store.
        c.attach_replica_payload(key, holder, chunk.clone()).unwrap();
        assert!(matches!(
            c.attach_replica_payload(key, holder, chunk),
            Err(ClusterError::PayloadExists(_))
        ));
    }

    #[test]
    fn rebalance_repairs_replica_sets_and_costs_the_topup() {
        let (_, chunk, key, d) = payload_chunk();
        let mut c = Cluster::with_replication(3, 1_000_000, CostModel::default(), 2).unwrap();
        c.place(d, NodeId(0)).unwrap();
        c.attach_payload(key, chunk).unwrap();
        // Move the primary onto its replica holder: the replica there is
        // superseded and a fresh copy must be re-created elsewhere, with
        // the repair flow costed in the same set as the move.
        let holder = c.replica_holders(&key)[0];
        let mut plan = RebalancePlan::empty();
        plan.push(key, NodeId(0), holder, d.bytes);
        let flows = c.apply_rebalance(&plan).unwrap();
        assert_eq!(flows.chunk_count(), 2, "one move + one replica top-up");
        assert_eq!(flows.total_bytes(), d.bytes * 2);
        c.verify_replica_books().unwrap();
        assert!(c.replica_census().is_full_strength());
        let new_holder = c.replica_holders(&key)[0];
        assert_ne!(new_holder, holder, "replica may not co-locate with its primary");
        assert!(
            c.node(new_holder).unwrap().replica_payload_shared(&key).is_some(),
            "top-up carries the payload handle"
        );
    }

    #[test]
    fn crash_refuses_last_serving_node() {
        let mut c = cluster(2);
        c.crash_node(NodeId(0)).unwrap();
        assert!(matches!(c.crash_node(NodeId(1)), Err(ClusterError::NoHealthyNodes)));
        // Coordinator re-elected off the wreck.
        assert_eq!(c.coordinator(), NodeId(1));
        // Double-crash is typed.
        assert!(matches!(c.crash_node(NodeId(0)), Err(ClusterError::NodeUnavailable { .. })));
    }

    #[test]
    fn divert_route_walks_to_an_accepting_node() {
        let mut c = cluster(3);
        let key = desc(7, 0).key;
        let diverted = c.divert_route(&key).unwrap();
        c.crash_node(diverted).unwrap();
        let rerouted = c.divert_route(&key).unwrap();
        assert_ne!(rerouted, diverted);
        assert!(c.node(rerouted).unwrap().state().accepts_data());
    }

    #[test]
    fn uniform_loads_census_to_exactly_zero() {
        let mut c = cluster(4);
        for i in 0..16 {
            c.place(desc(i, 250), NodeId((i % 4) as u32)).unwrap();
        }
        assert_eq!(c.balance_rsd(), 0.0);
        assert_eq!(c.total_used(), 4_000);
    }

    /// A retraction shrinks the payload, the resident descriptor, the
    /// byte ledgers, the census moments, and every replica copy — and the
    /// replica handle stays shared with the primary, never a cell copy.
    #[test]
    fn retract_cells_shrinks_every_copy() {
        use array_model::{ArraySchema, Chunk, ScalarValue};
        let schema = ArraySchema::parse("A<v:double>[x=0:7,8]").unwrap();
        let mut chunk = Chunk::new(&schema, ChunkCoords::new([0]));
        for x in 0..4i64 {
            chunk.push_cell(&schema, vec![x], vec![ScalarValue::Double(x as f64)]).unwrap();
        }
        let key = ChunkKey::new(ArrayId(0), ChunkCoords::new([0]));
        let d = ChunkDescriptor::new(key, chunk.byte_size(), chunk.cell_count());
        let mut c = Cluster::with_replication(3, 1_000_000, CostModel::default(), 2).unwrap();
        c.place(d, NodeId(0)).unwrap();
        c.attach_payload(key, chunk).unwrap();
        let holder = c.replica_holders(&key)[0];

        // Retract x=1 and x=3, plus one cell that was never there.
        let out = c.retract_cells(&key, &[1, 3, 6]).unwrap();
        assert_eq!(out.retracted, 2);
        assert_eq!(out.missing, 1);
        assert_eq!(out.remaining_cells, 2);
        assert_eq!(out.freed_bytes, 2 * (8 + 8), "two coord+double rows");

        let stored = c.payload_shared(&key).unwrap();
        assert_eq!(stored.cell_count(), 2);
        let new_desc = c.node(NodeId(0)).unwrap().descriptor(&key).copied().unwrap();
        assert_eq!(new_desc.bytes, stored.byte_size());
        assert_eq!(new_desc.cells, 2);
        assert_eq!(c.loads()[0], stored.byte_size());
        assert_eq!(c.total_used(), stored.byte_size());
        assert!((c.balance_rsd() - relative_std_dev(&c.loads())).abs() < 1e-12);
        // The replica copy shrank in lockstep and still shares the handle.
        let rn = c.node(holder).unwrap();
        assert_eq!(rn.replica_descriptor(&key).unwrap().bytes, stored.byte_size());
        assert!(Arc::ptr_eq(rn.replica_payload_shared(&key).unwrap(), stored));
        c.verify_replica_books().unwrap();

        // Re-retracting the same cells is idempotent: all missing.
        let again = c.retract_cells(&key, &[1, 3]).unwrap();
        assert_eq!((again.retracted, again.missing), (0, 2));

        // Metadata-only chunks refuse cell retraction, typed.
        let d2 = desc(9, 40);
        c.place(d2, NodeId(1)).unwrap();
        assert!(matches!(
            c.retract_cells(&d2.key, &[0]),
            Err(ClusterError::NoPayload(k)) if k == d2.key
        ));
    }

    /// Compacting a tombstoned payload rebuilds it from survivors on the
    /// primary and every replica copy: descriptor, ledgers, census, and
    /// the shared handle all follow, and the attach invariant keeps
    /// holding.
    #[test]
    fn compact_chunk_reclaims_on_every_copy() {
        use array_model::{ArraySchema, Chunk, ScalarValue};
        let schema = ArraySchema::parse("A<v:double>[x=0:7,8]").unwrap();
        let mut chunk = Chunk::new(&schema, ChunkCoords::new([0]));
        for x in 0..6i64 {
            chunk.push_cell(&schema, vec![x], vec![ScalarValue::Double(x as f64)]).unwrap();
        }
        let key = ChunkKey::new(ArrayId(0), ChunkCoords::new([0]));
        let d = ChunkDescriptor::new(key, chunk.byte_size(), chunk.cell_count());
        let mut c = Cluster::with_replication(3, 1_000_000, CostModel::default(), 2).unwrap();
        c.place(d, NodeId(0)).unwrap();
        c.attach_payload(key, chunk).unwrap();
        c.retract_cells(&key, &[0, 2, 4]).unwrap();
        assert_eq!(c.payload_shared(&key).unwrap().tombstone_count(), 3);

        let out = c.compact_chunk(&key).unwrap();
        assert_eq!(out.cells, 3);
        let stored = c.payload_shared(&key).unwrap();
        assert_eq!(stored.tombstone_count(), 0);
        assert_eq!(stored.cell_count(), 3);
        assert_eq!(out.bytes, stored.byte_size());
        let new_desc = c.node(NodeId(0)).unwrap().descriptor(&key).copied().unwrap();
        assert_eq!((new_desc.bytes, new_desc.cells), (stored.byte_size(), 3));
        assert_eq!(c.total_used(), stored.byte_size());
        let holder = c.replica_holders(&key)[0];
        let rn = c.node(holder).unwrap();
        assert_eq!(rn.replica_descriptor(&key).unwrap().bytes, stored.byte_size());
        assert!(Arc::ptr_eq(rn.replica_payload_shared(&key).unwrap(), stored));
        c.verify_replica_books().unwrap();

        // A tombstone-free chunk compacts to a no-op, and metadata-only
        // chunks refuse, typed.
        assert_eq!(c.compact_chunk(&key).unwrap().reclaimed_bytes, 0);
        let d2 = desc(9, 40);
        c.place(d2, NodeId(1)).unwrap();
        assert!(matches!(
            c.compact_chunk(&d2.key),
            Err(ClusterError::NoPayload(k)) if k == d2.key
        ));
    }

    /// The metadata door: descriptor shrink flows through ledgers, census
    /// moments, and replica descriptors, with no payload involved.
    #[test]
    fn shrink_chunk_adjusts_descriptors_and_census() {
        let mut c = Cluster::with_replication(3, 1_000_000, CostModel::default(), 2).unwrap();
        c.place(desc(1, 400), NodeId(0)).unwrap();
        c.place(desc(2, 400), NodeId(1)).unwrap();
        c.shrink_chunk(&desc(1, 0).key, 150, 1).unwrap();
        assert_eq!(c.loads()[0], 150);
        assert_eq!(c.total_used(), 550);
        assert!((c.balance_rsd() - relative_std_dev(&c.loads())).abs() < 1e-12);
        let holder = c.replica_holders(&desc(1, 0).key)[0];
        assert_eq!(c.node(holder).unwrap().replica_descriptor(&desc(1, 0).key).unwrap().bytes, 150);
        assert!(matches!(
            c.shrink_chunk(&desc(7, 0).key, 1, 1),
            Err(ClusterError::MissingChunk(_))
        ));
    }

    /// Evicting a chunk removes the placement entry, both stores, and the
    /// replica set; the vacated placement slot is reusable.
    #[test]
    fn evict_chunk_clears_placement_stores_and_replicas() {
        let mut c = Cluster::with_replication(3, 1_000_000, CostModel::default(), 2).unwrap();
        c.place(desc(1, 100), NodeId(0)).unwrap();
        c.place(desc(2, 100), NodeId(1)).unwrap();
        let key = desc(1, 0).key;
        let ev = c.evict_chunk(&key).unwrap();
        assert_eq!(ev.node, NodeId(0));
        assert_eq!(ev.bytes, 100);
        assert_eq!(ev.replicas_dropped, 1);
        assert_eq!(c.locate(&key), None);
        assert_eq!(c.total_chunks(), 1);
        assert_eq!(c.loads()[0], 0);
        assert!(c.replica_holders(&key).is_empty());
        c.verify_replica_books().unwrap();
        assert!(matches!(c.evict_chunk(&key), Err(ClusterError::MissingChunk(_))));
        // The slot is reusable after eviction.
        c.place(desc(1, 60), NodeId(2)).unwrap();
        assert_eq!(c.locate(&key), Some(NodeId(2)));
    }

    /// The full scale-IN arc: drain → rebalance-out → retire. The node
    /// keeps its roster slot but leaves every census denominator, and the
    /// freed chunks land on the least-loaded survivors deterministically.
    #[test]
    fn decommission_drains_and_retires_the_node() {
        let mut c = cluster(3);
        for i in 0..6 {
            c.place(desc(i, 100), NodeId((i % 3) as u32)).unwrap();
        }
        let report = c.decommission_node(NodeId(2)).unwrap();
        assert_eq!(report.node, NodeId(2));
        assert_eq!(report.moved_chunks, 2);
        assert_eq!(report.drained_bytes, 200);
        assert_eq!(report.flows.network_bytes(), 200);
        assert_eq!(c.node(NodeId(2)).unwrap().state(), NodeState::Retired);
        assert_eq!(c.node_count(), 3, "the roster slot survives");
        assert_eq!(c.active_node_count(), 2);
        assert_eq!(c.total_capacity(), 2_000);
        assert_eq!(c.loads(), vec![300, 300, 0]);
        assert_eq!(c.balance_rsd(), 0.0, "census ranges over active nodes only");
        assert_eq!(c.total_used(), 600);
        // A retired node serves nothing and accepts nothing, typed.
        assert!(matches!(
            c.place(desc(9, 1), NodeId(2)),
            Err(ClusterError::NodeUnavailable { node: 2, .. })
        ));
        assert!(matches!(c.crash_node(NodeId(2)), Err(ClusterError::NodeUnavailable { .. })));
        assert!(matches!(c.start_draining(NodeId(2)), Err(ClusterError::NodeUnavailable { .. })));
        // Subsequent placements and rebalances keep working on survivors.
        c.place(desc(9, 50), NodeId(0)).unwrap();
        assert_eq!(c.total_chunks(), 7);
    }

    /// Retirement drops the node's replica copies and tops the affected
    /// replica sets back up on the shrunken roster, costing the repairs.
    #[test]
    fn decommission_repairs_replica_sets_on_survivors() {
        let mut c = Cluster::with_replication(4, 1_000_000, CostModel::default(), 2).unwrap();
        for i in 0..12 {
            c.place(desc(i, 100), NodeId((i % 4) as u32)).unwrap();
        }
        assert!(c.replica_census().is_full_strength());
        let report = c.decommission_node(NodeId(3)).unwrap();
        assert_eq!(c.active_node_count(), 3);
        c.verify_replica_books().unwrap();
        assert!(
            c.replica_census().is_full_strength(),
            "every replica set is repaired on the survivors"
        );
        // No replica may live on the retired node any more.
        assert_eq!(c.node(NodeId(3)).unwrap().replica_bytes(), 0);
        assert!(report.flows.chunk_count() >= report.moved_chunks as u64);
    }

    #[test]
    fn retire_refuses_nonempty_and_last_server() {
        let mut c = cluster(2);
        c.place(desc(1, 100), NodeId(0)).unwrap();
        assert!(matches!(
            c.retire_node(NodeId(0)),
            Err(ClusterError::RetireNonEmpty { node: 0, chunks: 1 })
        ));
        // Retire the empty node 1, then node 0 is the last server.
        c.retire_node(NodeId(1)).unwrap();
        c.evict_chunk(&desc(1, 0).key).unwrap();
        assert!(matches!(c.retire_node(NodeId(0)), Err(ClusterError::NoHealthyNodes)));
        assert_eq!(c.node(NodeId(0)).unwrap().state(), NodeState::Healthy);
    }

    /// A decommission that cannot complete cancels its drain: the node
    /// returns to `Healthy` and the cluster keeps working.
    #[test]
    fn failed_decommission_cancels_the_drain() {
        let mut c = cluster(2);
        c.place(desc(1, 100), NodeId(0)).unwrap();
        c.crash_node(NodeId(1)).unwrap();
        // Node 0 is the last server: the drain has nowhere to go.
        assert!(c.decommission_node(NodeId(0)).is_err());
        assert_eq!(c.node(NodeId(0)).unwrap().state(), NodeState::Healthy);
        c.place(desc(2, 50), NodeId(0)).unwrap();
    }
}
