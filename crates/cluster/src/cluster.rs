//! The simulated shared-nothing cluster: node roster plus chunk placement.

use crate::cost::CostModel;
use crate::error::{ClusterError, Result};
use crate::node::{Node, NodeId};
use crate::rebalance::RebalancePlan;
use crate::transfer::FlowSet;
use array_model::{ChunkDescriptor, ChunkKey};
use std::collections::BTreeMap;

/// The cluster: an append-only roster of nodes and the authoritative
/// chunk→node placement map.
///
/// The first node doubles as the **coordinator** (§3.4: "inserts are
/// submitted to a coordinator node, and it distributes the incoming chunks
/// over the entire cluster").
#[derive(Debug, Clone)]
pub struct Cluster {
    nodes: Vec<Node>,
    placement: BTreeMap<ChunkKey, NodeId>,
    cost: CostModel,
}

impl Cluster {
    /// A cluster of `node_count` empty nodes of equal `capacity_bytes`.
    pub fn new(node_count: usize, capacity_bytes: u64, cost: CostModel) -> Result<Self> {
        if node_count == 0 {
            return Err(ClusterError::EmptyCluster);
        }
        let nodes = (0..node_count as u32)
            .map(|i| Node::new(NodeId(i), capacity_bytes))
            .collect();
        Ok(Cluster { nodes, placement: BTreeMap::new(), cost })
    }

    /// The cost model in force.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The coordinator node (always the first).
    pub fn coordinator(&self) -> NodeId {
        self.nodes[0].id
    }

    /// Current node count.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Node ids in join order.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.nodes.iter().map(|n| n.id).collect()
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> Result<&Node> {
        self.nodes.get(id.0 as usize).ok_or(ClusterError::UnknownNode(id.0))
    }

    /// Iterate all nodes in join order.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter()
    }

    /// Append `count` fresh nodes; returns their ids.
    pub fn add_nodes(&mut self, count: usize, capacity_bytes: u64) -> Vec<NodeId> {
        let mut added = Vec::with_capacity(count);
        for _ in 0..count {
            let id = NodeId(self.nodes.len() as u32);
            self.nodes.push(Node::new(id, capacity_bytes));
            added.push(id);
        }
        added
    }

    /// Where a chunk lives, if resident.
    pub fn locate(&self, key: &ChunkKey) -> Option<NodeId> {
        self.placement.get(key).copied()
    }

    /// Place a brand-new chunk on `node`.
    pub fn place(&mut self, desc: ChunkDescriptor, node: NodeId) -> Result<()> {
        if self.placement.contains_key(&desc.key) {
            return Err(ClusterError::DuplicateChunk(desc.key));
        }
        let n = self
            .nodes
            .get_mut(node.0 as usize)
            .ok_or(ClusterError::UnknownNode(node.0))?;
        self.placement.insert(desc.key.clone(), node);
        n.admit(desc);
        Ok(())
    }

    /// Execute a rebalance plan, validating each move against the actual
    /// placement, and return the flow set that timed it.
    pub fn apply_rebalance(&mut self, plan: &RebalancePlan) -> Result<FlowSet> {
        // Validate first so a bad plan leaves the cluster untouched.
        for m in &plan.moves {
            let actual = self
                .placement
                .get(&m.key)
                .copied()
                .ok_or_else(|| ClusterError::MissingChunk(m.key.clone()))?;
            if actual != m.from {
                return Err(ClusterError::WrongSource {
                    key: m.key.clone(),
                    claimed: m.from.0,
                    actual: actual.0,
                });
            }
            if m.to.0 as usize >= self.nodes.len() {
                return Err(ClusterError::UnknownNode(m.to.0));
            }
        }
        let mut flows = FlowSet::new();
        for m in &plan.moves {
            let desc = self.nodes[m.from.0 as usize]
                .evict(&m.key)
                .expect("validated above");
            flows.push(m.from, m.to, desc.bytes);
            self.placement.insert(m.key.clone(), m.to);
            self.nodes[m.to.0 as usize].admit(desc);
        }
        Ok(flows)
    }

    /// Per-node stored bytes, in join order. The input to every balance
    /// metric and to the skew-aware partitioners.
    pub fn loads(&self) -> Vec<u64> {
        self.nodes.iter().map(Node::used_bytes).collect()
    }

    /// Per-node chunk counts, in join order.
    pub fn chunk_counts(&self) -> Vec<usize> {
        self.nodes.iter().map(Node::chunk_count).collect()
    }

    /// Total bytes stored across the cluster.
    pub fn total_used(&self) -> u64 {
        self.nodes.iter().map(Node::used_bytes).sum()
    }

    /// Total capacity across the cluster (N × c).
    pub fn total_capacity(&self) -> u64 {
        self.nodes.iter().map(|n| n.capacity_bytes).sum()
    }

    /// The most loaded node (by bytes); ties break toward the lower id.
    pub fn most_loaded(&self) -> NodeId {
        self.nodes
            .iter()
            .max_by(|a, b| {
                a.used_bytes()
                    .cmp(&b.used_bytes())
                    .then(b.id.0.cmp(&a.id.0))
            })
            .expect("cluster is never empty")
            .id
    }

    /// Number of resident chunks cluster-wide.
    pub fn total_chunks(&self) -> usize {
        self.placement.len()
    }

    /// Iterate every `(key, node)` placement in deterministic key order.
    pub fn placements(&self) -> impl Iterator<Item = (&ChunkKey, NodeId)> {
        self.placement.iter().map(|(k, n)| (k, *n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use array_model::{ArrayId, ChunkCoords};

    fn desc(i: i64, bytes: u64) -> ChunkDescriptor {
        ChunkDescriptor::new(ChunkKey::new(ArrayId(0), ChunkCoords::new(vec![i])), bytes, 1)
    }

    fn cluster(n: usize) -> Cluster {
        Cluster::new(n, 1_000, CostModel::default()).unwrap()
    }

    #[test]
    fn rejects_empty_cluster() {
        assert!(Cluster::new(0, 1_000, CostModel::default()).is_err());
    }

    #[test]
    fn place_and_locate() {
        let mut c = cluster(2);
        c.place(desc(1, 100), NodeId(1)).unwrap();
        assert_eq!(c.locate(&desc(1, 0).key), Some(NodeId(1)));
        assert_eq!(c.loads(), vec![0, 100]);
        assert!(matches!(
            c.place(desc(1, 100), NodeId(0)),
            Err(ClusterError::DuplicateChunk(_))
        ));
        assert!(matches!(
            c.place(desc(2, 100), NodeId(9)),
            Err(ClusterError::UnknownNode(9))
        ));
    }

    #[test]
    fn add_nodes_assigns_sequential_ids() {
        let mut c = cluster(2);
        let added = c.add_nodes(2, 1_000);
        assert_eq!(added, vec![NodeId(2), NodeId(3)]);
        assert_eq!(c.node_count(), 4);
        assert_eq!(c.total_capacity(), 4_000);
    }

    #[test]
    fn rebalance_moves_and_validates() {
        let mut c = cluster(3);
        c.place(desc(1, 100), NodeId(0)).unwrap();
        c.place(desc(2, 50), NodeId(0)).unwrap();

        let mut plan = RebalancePlan::empty();
        plan.push(desc(1, 100).key, NodeId(0), NodeId(2), 100);
        let flows = c.apply_rebalance(&plan).unwrap();
        assert_eq!(flows.network_bytes(), 100);
        assert_eq!(c.locate(&desc(1, 0).key), Some(NodeId(2)));
        assert_eq!(c.loads(), vec![50, 0, 100]);

        // Wrong source is rejected and leaves state intact.
        let mut bad = RebalancePlan::empty();
        bad.push(desc(2, 50).key, NodeId(1), NodeId(2), 50);
        assert!(matches!(c.apply_rebalance(&bad), Err(ClusterError::WrongSource { .. })));
        assert_eq!(c.locate(&desc(2, 0).key), Some(NodeId(0)));

        // Missing chunk is rejected.
        let mut missing = RebalancePlan::empty();
        missing.push(desc(9, 1).key, NodeId(0), NodeId(1), 1);
        assert!(matches!(c.apply_rebalance(&missing), Err(ClusterError::MissingChunk(_))));
    }

    #[test]
    fn most_loaded_breaks_ties_low() {
        let mut c = cluster(3);
        c.place(desc(1, 100), NodeId(1)).unwrap();
        c.place(desc(2, 100), NodeId(2)).unwrap();
        assert_eq!(c.most_loaded(), NodeId(1));
        c.place(desc(3, 1), NodeId(2)).unwrap();
        assert_eq!(c.most_loaded(), NodeId(2));
    }

    #[test]
    fn atomic_validation_prevents_partial_application() {
        let mut c = cluster(3);
        c.place(desc(1, 10), NodeId(0)).unwrap();
        c.place(desc(2, 10), NodeId(1)).unwrap();
        let mut plan = RebalancePlan::empty();
        plan.push(desc(1, 10).key, NodeId(0), NodeId(2), 10); // fine
        plan.push(desc(2, 10).key, NodeId(0), NodeId(2), 10); // wrong source
        assert!(c.apply_rebalance(&plan).is_err());
        // first move must NOT have been applied
        assert_eq!(c.locate(&desc(1, 0).key), Some(NodeId(0)));
    }
}
