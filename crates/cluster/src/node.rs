//! Simulated shared-nothing cluster nodes.

use array_model::{Chunk, ChunkDescriptor, ChunkKey};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Identifier of a cluster node. Nodes are numbered in join order and
/// keep their roster **slot** forever — a scale-IN removes a node from
/// *service* by retiring it ([`NodeState::Retired`]), never by
/// compacting the roster, so every historical id (and the replica
/// ring's modular arithmetic over the roster length) stays stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Lifecycle state of one node (see `recovery` module docs for the full
/// state machine).
///
/// * `Healthy` — full member: serves reads, accepts placements, replicas,
///   and repairs.
/// * `Crashed` — lost its stores; serves nothing and accepts nothing
///   until revived.
/// * `Draining` — scale-IN preparation: still serves reads but accepts no
///   new data, so placement, replica routing, and repair all route around
///   it.
/// * `Recovering` — a revived node catching back up: accepts data (that
///   is how it refills) and serves what it holds, flagged until
///   [`crate::Cluster::mark_recovered`] promotes it back to `Healthy`.
/// * `Retired` — scale-IN completed: the node was drained, its data
///   rebalanced away, and it has left service permanently. It keeps its
///   roster slot (so ids and replica-ring arithmetic stay stable) but
///   serves nothing, accepts nothing, and no longer counts toward
///   cluster strength.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum NodeState {
    /// Full member of the cluster.
    #[default]
    Healthy,
    /// Failed; stores wiped, out of service.
    Crashed,
    /// Serving reads only while being emptied for scale-IN.
    Draining,
    /// Revived after a crash; refilling.
    Recovering,
    /// Decommissioned: drained, emptied, and released. Terminal.
    Retired,
}

impl NodeState {
    /// Can this node answer reads for the chunks it holds?
    pub fn serves_reads(&self) -> bool {
        !matches!(self, NodeState::Crashed | NodeState::Retired)
    }

    /// Can this node receive new descriptors, payloads, or replicas?
    pub fn accepts_data(&self) -> bool {
        matches!(self, NodeState::Healthy | NodeState::Recovering)
    }

    /// Has this node left the cluster for good (scale-IN)? Retired nodes
    /// keep their roster slot but are excluded from cluster strength and
    /// the balance census denominator.
    pub fn is_retired(&self) -> bool {
        matches!(self, NodeState::Retired)
    }
}

impl fmt::Display for NodeState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            NodeState::Healthy => "healthy",
            NodeState::Crashed => "crashed",
            NodeState::Draining => "draining",
            NodeState::Recovering => "recovering",
            NodeState::Retired => "retired",
        })
    }
}

/// One node: a storage budget plus the chunks resident on it.
///
/// Descriptors are always tracked; materialized runs additionally attach
/// each chunk's cell payload, which then travels with the descriptor
/// through rebalance moves. Payloads are held as shared `Arc<Chunk>`
/// handles — the same chunk object the catalog's whole-array oracle
/// copy holds — so attaching one is a refcount bump and a rebalance
/// moves the handle, never the cells.
///
/// With replication (`k ≥ 2`) a node additionally carries a *replica*
/// store: secondary copies of chunks whose primary lives elsewhere.
/// Replica bytes are ledgered separately (`replica_bytes`) and are
/// deliberately excluded from [`Node::used_bytes`], so the paper's
/// balance census, skew metrics, and scaling triggers stay defined over
/// primaries and remain bit-identical at every `k`.
#[derive(Debug, Clone)]
pub struct Node {
    /// This node's identifier.
    pub id: NodeId,
    /// Storage capacity in bytes (`c` in the paper; 100 GB per node in §6.1).
    pub capacity_bytes: u64,
    state: NodeState,
    used_bytes: u64,
    replica_bytes: u64,
    chunks: BTreeMap<ChunkKey, ChunkDescriptor>,
    payloads: BTreeMap<ChunkKey, Arc<Chunk>>,
    replicas: BTreeMap<ChunkKey, ChunkDescriptor>,
    replica_payloads: BTreeMap<ChunkKey, Arc<Chunk>>,
}

impl Node {
    /// A fresh, empty node.
    pub fn new(id: NodeId, capacity_bytes: u64) -> Self {
        Node {
            id,
            capacity_bytes,
            state: NodeState::Healthy,
            used_bytes: 0,
            replica_bytes: 0,
            chunks: BTreeMap::new(),
            payloads: BTreeMap::new(),
            replicas: BTreeMap::new(),
            replica_payloads: BTreeMap::new(),
        }
    }

    /// Current lifecycle state.
    pub fn state(&self) -> NodeState {
        self.state
    }

    pub(crate) fn set_state(&mut self, state: NodeState) {
        self.state = state;
    }

    /// Bytes currently stored.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Number of resident chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Fraction of capacity in use (may exceed 1.0 under overload).
    pub fn utilization(&self) -> f64 {
        if self.capacity_bytes == 0 {
            return 0.0;
        }
        self.used_bytes as f64 / self.capacity_bytes as f64
    }

    /// Is the chunk resident here?
    pub fn holds(&self, key: &ChunkKey) -> bool {
        self.chunks.contains_key(key)
    }

    /// The resident descriptor for `key`, if any.
    pub fn descriptor(&self, key: &ChunkKey) -> Option<&ChunkDescriptor> {
        self.chunks.get(key)
    }

    /// Iterate resident chunks in deterministic (key) order.
    pub fn descriptors(&self) -> impl Iterator<Item = &ChunkDescriptor> {
        self.chunks.values()
    }

    pub(crate) fn admit(&mut self, desc: ChunkDescriptor) {
        self.used_bytes = self.used_bytes.saturating_add(desc.bytes);
        self.chunks.insert(desc.key, desc);
    }

    /// Store a descriptor without touching the byte ledger. The parallel
    /// batch-placement path admits descriptors from per-node workers and
    /// applies the byte loads afterwards from the merged per-shard deltas
    /// (see `Cluster::place_batch`); the pair must always be used together.
    pub(crate) fn admit_descriptor(&mut self, desc: ChunkDescriptor) {
        self.chunks.insert(desc.key, desc);
    }

    /// Apply a byte-load delta accumulated by [`Node::admit_descriptor`].
    pub(crate) fn add_load(&mut self, bytes: u64) {
        self.used_bytes = self.used_bytes.saturating_add(bytes);
    }

    /// Remove a chunk and whatever payload it carries, keeping the
    /// descriptor/payload pair structurally inseparable: no eviction path
    /// can strand an orphaned payload on the node.
    ///
    /// The byte ledger uses checked subtraction: an eviction larger than
    /// the ledger is an accounting bug (a retraction decremented a
    /// descriptor without telling the node, or vice versa), so it panics
    /// in debug builds instead of silently clamping to zero. Release
    /// builds clamp, keeping the simulation alive.
    pub(crate) fn evict(
        &mut self,
        key: &ChunkKey,
    ) -> Option<(ChunkDescriptor, Option<Arc<Chunk>>)> {
        let desc = self.chunks.remove(key)?;
        self.used_bytes = self.used_bytes.checked_sub(desc.bytes).unwrap_or_else(|| {
            debug_assert!(
                false,
                "byte ledger underflow: evicting {} bytes from a {}-byte ledger on {}",
                desc.bytes, self.used_bytes, self.id
            );
            0
        });
        Some((desc, self.payloads.remove(key)))
    }

    /// Replace a resident chunk's descriptor in place (a retraction
    /// shrank it), adjusting the byte ledger by the exact delta. Returns
    /// the previous descriptor, or `None` when the chunk is not
    /// resident. Shrink uses checked subtraction, as in [`Node::evict`].
    pub(crate) fn resize(&mut self, desc: ChunkDescriptor) -> Option<ChunkDescriptor> {
        let slot = self.chunks.get_mut(&desc.key)?;
        let old = *slot;
        *slot = desc;
        if desc.bytes >= old.bytes {
            self.used_bytes = self.used_bytes.saturating_add(desc.bytes - old.bytes);
        } else {
            let freed = old.bytes - desc.bytes;
            self.used_bytes = self.used_bytes.checked_sub(freed).unwrap_or_else(|| {
                debug_assert!(
                    false,
                    "byte ledger underflow: shrinking {} bytes from a {}-byte ledger on {}",
                    freed, self.used_bytes, self.id
                );
                0
            });
        }
        Some(old)
    }

    /// The replica-store counterpart of [`Node::resize`].
    pub(crate) fn resize_replica(&mut self, desc: ChunkDescriptor) -> Option<ChunkDescriptor> {
        let slot = self.replicas.get_mut(&desc.key)?;
        let old = *slot;
        *slot = desc;
        if desc.bytes >= old.bytes {
            self.replica_bytes = self.replica_bytes.saturating_add(desc.bytes - old.bytes);
        } else {
            let freed = old.bytes - desc.bytes;
            self.replica_bytes = self.replica_bytes.checked_sub(freed).unwrap_or_else(|| {
                debug_assert!(
                    false,
                    "replica ledger underflow: shrinking {} bytes from a {}-byte ledger on {}",
                    freed, self.replica_bytes, self.id
                );
                0
            });
        }
        Some(old)
    }

    /// Mutable handle to a resident primary payload (the retraction path
    /// tombstones stored cells through `Arc::make_mut`).
    pub(crate) fn payload_mut(&mut self, key: &ChunkKey) -> Option<&mut Arc<Chunk>> {
        self.payloads.get_mut(key)
    }

    /// Mutable handle to a resident replica payload.
    pub(crate) fn replica_payload_mut(&mut self, key: &ChunkKey) -> Option<&mut Arc<Chunk>> {
        self.replica_payloads.get_mut(key)
    }

    /// The materialized payload of a resident chunk, when one is stored.
    pub fn payload(&self, key: &ChunkKey) -> Option<&Chunk> {
        self.payloads.get(key).map(Arc::as_ref)
    }

    /// The shared handle of a resident payload, when one is stored —
    /// lets callers prove zero-copy sharing (`Arc::ptr_eq`) or take a
    /// cheap co-owning reference.
    pub fn payload_shared(&self, key: &ChunkKey) -> Option<&Arc<Chunk>> {
        self.payloads.get(key)
    }

    /// Number of resident chunks carrying a materialized payload.
    pub fn payload_count(&self) -> usize {
        self.payloads.len()
    }

    pub(crate) fn store_payload(&mut self, key: ChunkKey, chunk: Arc<Chunk>) {
        self.payloads.insert(key, chunk);
    }

    /// Whether a payload is already attached for `key` (primary store).
    pub fn has_payload(&self, key: &ChunkKey) -> bool {
        self.payloads.contains_key(key)
    }

    /// Bytes held as secondary replica copies (excluded from
    /// [`Node::used_bytes`] and the balance census).
    pub fn replica_bytes(&self) -> u64 {
        self.replica_bytes
    }

    /// Number of secondary replica descriptors resident here.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Is a secondary copy of the chunk resident here?
    pub fn holds_replica(&self, key: &ChunkKey) -> bool {
        self.replicas.contains_key(key)
    }

    /// The resident replica descriptor for `key`, if any.
    pub fn replica_descriptor(&self, key: &ChunkKey) -> Option<&ChunkDescriptor> {
        self.replicas.get(key)
    }

    /// Iterate resident replica copies in deterministic (key) order.
    pub fn replica_descriptors(&self) -> impl Iterator<Item = &ChunkDescriptor> {
        self.replicas.values()
    }

    /// The shared payload handle of a resident replica copy, if attached.
    pub fn replica_payload_shared(&self, key: &ChunkKey) -> Option<&Arc<Chunk>> {
        self.replica_payloads.get(key)
    }

    pub(crate) fn admit_replica(&mut self, desc: ChunkDescriptor) {
        self.replica_bytes = self.replica_bytes.saturating_add(desc.bytes);
        self.replicas.insert(desc.key, desc);
    }

    pub(crate) fn store_replica_payload(&mut self, key: ChunkKey, chunk: Arc<Chunk>) {
        self.replica_payloads.insert(key, chunk);
    }

    /// Remove a replica copy (descriptor + payload pair) from this node.
    /// Checked subtraction, as in [`Node::evict`]: a replica-ledger
    /// underflow panics in debug builds.
    pub(crate) fn evict_replica(
        &mut self,
        key: &ChunkKey,
    ) -> Option<(ChunkDescriptor, Option<Arc<Chunk>>)> {
        let desc = self.replicas.remove(key)?;
        self.replica_bytes = self.replica_bytes.checked_sub(desc.bytes).unwrap_or_else(|| {
            debug_assert!(
                false,
                "replica ledger underflow: evicting {} bytes from a {}-byte ledger on {}",
                desc.bytes, self.replica_bytes, self.id
            );
            0
        });
        Some((desc, self.replica_payloads.remove(key)))
    }

    /// Serialize this node for a checkpoint: identity, budget, lifecycle
    /// state, both descriptor stores, both byte ledgers (as cross-check
    /// values), and *which* chunks carry payloads. The payload cells
    /// themselves are not written here — the catalog section of the
    /// checkpoint owns them, and restore re-wires the shared handles.
    pub(crate) fn snapshot_into(&self, w: &mut durability::ByteWriter) {
        w.put_u32(self.id.0);
        w.put_u64(self.capacity_bytes);
        w.put_u8(match self.state {
            NodeState::Healthy => 0,
            NodeState::Crashed => 1,
            NodeState::Draining => 2,
            NodeState::Recovering => 3,
            NodeState::Retired => 4,
        });
        w.put_u64(self.used_bytes);
        w.put_u64(self.replica_bytes);
        w.put_usize(self.chunks.len());
        for desc in self.chunks.values() {
            desc.encode_into(w);
        }
        w.put_usize(self.payloads.len());
        for key in self.payloads.keys() {
            key.encode_into(w);
        }
        w.put_usize(self.replicas.len());
        for desc in self.replicas.values() {
            desc.encode_into(w);
        }
        w.put_usize(self.replica_payloads.len());
        for key in self.replica_payloads.keys() {
            key.encode_into(w);
        }
    }

    /// Rebuild a node from [`Node::snapshot_into`], re-attaching payload
    /// handles through `payload_of` (the restored catalog). The byte
    /// ledgers are recomputed from the descriptors and cross-checked
    /// against the serialized values — drift is surfaced as a typed
    /// [`durability::DurabilityError::Mismatch`], never absorbed.
    pub(crate) fn restore_from(
        r: &mut durability::ByteReader<'_>,
        payload_of: &dyn Fn(&ChunkKey) -> Option<Arc<Chunk>>,
    ) -> Result<Node, durability::DurabilityError> {
        let codec = |context: &str, source| durability::DurabilityError::Codec {
            context: context.to_string(),
            source,
        };
        let id = NodeId(r.u32("node id").map_err(|e| codec("node id", e))?);
        let capacity_bytes = r.u64("node capacity").map_err(|e| codec("node capacity", e))?;
        let state = match r.u8("node state").map_err(|e| codec("node state", e))? {
            0 => NodeState::Healthy,
            1 => NodeState::Crashed,
            2 => NodeState::Draining,
            3 => NodeState::Recovering,
            4 => NodeState::Retired,
            tag => {
                return Err(codec(
                    "node state",
                    durability::CodecError::Invalid {
                        context: "node state",
                        detail: format!("unknown state tag {tag}"),
                    },
                ))
            }
        };
        let want_used = r.u64("node used bytes").map_err(|e| codec("node used bytes", e))?;
        let want_replica =
            r.u64("node replica bytes").map_err(|e| codec("node replica bytes", e))?;
        let mut node = Node::new(id, capacity_bytes);
        node.state = state;
        let attach = |key: &ChunkKey| {
            payload_of(key).ok_or_else(|| durability::DurabilityError::Mismatch {
                what: format!("payload for {key}"),
                expected: "present in restored catalog".to_string(),
                actual: "missing".to_string(),
            })
        };
        let n = r.usize("node chunk count").map_err(|e| codec("node chunk count", e))?;
        for _ in 0..n {
            let desc = ChunkDescriptor::decode_from(r).map_err(|e| codec("chunk descriptor", e))?;
            node.admit(desc);
        }
        let n = r.usize("node payload count").map_err(|e| codec("node payload count", e))?;
        for _ in 0..n {
            let key = ChunkKey::decode_from(r).map_err(|e| codec("payload key", e))?;
            node.store_payload(key, attach(&key)?);
        }
        let n = r.usize("node replica count").map_err(|e| codec("node replica count", e))?;
        for _ in 0..n {
            let desc =
                ChunkDescriptor::decode_from(r).map_err(|e| codec("replica descriptor", e))?;
            node.admit_replica(desc);
        }
        let n = r
            .usize("node replica payload count")
            .map_err(|e| codec("node replica payload count", e))?;
        for _ in 0..n {
            let key = ChunkKey::decode_from(r).map_err(|e| codec("replica payload key", e))?;
            node.store_replica_payload(key, attach(&key)?);
        }
        if node.used_bytes != want_used || node.replica_bytes != want_replica {
            return Err(durability::DurabilityError::Mismatch {
                what: format!("byte ledgers of {id}"),
                expected: format!("{want_used} used / {want_replica} replica"),
                actual: format!("{} used / {} replica", node.used_bytes, node.replica_bytes),
            });
        }
        Ok(node)
    }

    /// Drop every store on this node — primaries, replicas, payloads —
    /// and zero both byte ledgers. Used by crash injection; the caller is
    /// responsible for updating the cluster-level balance census.
    pub(crate) fn wipe(&mut self) {
        self.used_bytes = 0;
        self.replica_bytes = 0;
        self.chunks.clear();
        self.payloads.clear();
        self.replicas.clear();
        self.replica_payloads.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use array_model::{ArrayId, ChunkCoords};

    fn desc(i: i64, bytes: u64) -> ChunkDescriptor {
        ChunkDescriptor::new(ChunkKey::new(ArrayId(0), ChunkCoords::new([i])), bytes, 1)
    }

    #[test]
    fn admit_and_evict_track_usage() {
        let mut n = Node::new(NodeId(0), 1000);
        n.admit(desc(1, 300));
        n.admit(desc(2, 200));
        assert_eq!(n.used_bytes(), 500);
        assert_eq!(n.chunk_count(), 2);
        assert!((n.utilization() - 0.5).abs() < 1e-12);
        let (evicted, payload) = n.evict(&desc(1, 300).key).unwrap();
        assert_eq!(evicted.bytes, 300);
        assert!(payload.is_none(), "no payload was attached");
        assert_eq!(n.used_bytes(), 200);
        assert!(n.evict(&desc(9, 0).key).is_none());
    }

    #[test]
    fn byte_ledgers_saturate_on_admit() {
        let mut n = Node::new(NodeId(0), u64::MAX);
        n.admit(desc(1, u64::MAX - 10));
        n.admit(desc(2, 100));
        assert_eq!(n.used_bytes(), u64::MAX, "admit saturates, never wraps");
        n.add_load(u64::MAX);
        assert_eq!(n.used_bytes(), u64::MAX);
        let mut r = Node::new(NodeId(1), u64::MAX);
        r.admit_replica(desc(3, u64::MAX - 1));
        r.admit_replica(desc(4, 50));
        assert_eq!(r.replica_bytes(), u64::MAX);
    }

    // Over-eviction is an accounting bug, not a condition to paper over:
    // the checked subtraction panics in debug builds (tests run debug),
    // so a retraction that double-counts bytes surfaces immediately.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "byte ledger underflow")]
    fn over_eviction_panics_in_debug() {
        let mut n = Node::new(NodeId(0), u64::MAX);
        n.admit(desc(1, u64::MAX - 10));
        n.admit(desc(2, 100)); // ledger saturates at u64::MAX
        n.evict(&desc(1, u64::MAX - 10).key); // ledger: 10
        n.evict(&desc(2, 100).key); // 100 > 10: underflow
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "replica ledger underflow")]
    fn replica_over_eviction_panics_in_debug() {
        let mut r = Node::new(NodeId(1), u64::MAX);
        r.admit_replica(desc(3, u64::MAX - 1));
        r.admit_replica(desc(4, 50)); // saturates
        r.evict_replica(&desc(3, u64::MAX - 1).key); // ledger: 1
        r.evict_replica(&desc(4, 50).key); // 50 > 1: underflow
    }

    #[test]
    fn resize_adjusts_the_ledger_exactly() {
        let mut n = Node::new(NodeId(0), 1000);
        n.admit(desc(1, 300));
        n.admit(desc(2, 200));
        let old = n.resize(ChunkDescriptor::new(desc(1, 0).key, 120, 1)).unwrap();
        assert_eq!(old.bytes, 300);
        assert_eq!(n.used_bytes(), 320);
        assert_eq!(n.descriptor(&desc(1, 0).key).unwrap().bytes, 120);
        // Growth works too (an insert into an existing chunk).
        n.resize(ChunkDescriptor::new(desc(1, 0).key, 150, 2)).unwrap();
        assert_eq!(n.used_bytes(), 350);
        assert!(n.resize(desc(9, 10)).is_none(), "non-resident chunks cannot resize");
        let mut r = Node::new(NodeId(1), 1000);
        r.admit_replica(desc(3, 80));
        r.resize_replica(ChunkDescriptor::new(desc(3, 0).key, 30, 1)).unwrap();
        assert_eq!(r.replica_bytes(), 30);
    }

    #[test]
    fn retired_nodes_serve_and_accept_nothing() {
        assert!(!NodeState::Retired.serves_reads());
        assert!(!NodeState::Retired.accepts_data());
        assert!(NodeState::Retired.is_retired());
        assert!(!NodeState::Draining.is_retired());
        assert_eq!(NodeState::Retired.to_string(), "retired");
    }

    #[test]
    fn lifecycle_predicates() {
        assert!(NodeState::Healthy.serves_reads() && NodeState::Healthy.accepts_data());
        assert!(!NodeState::Crashed.serves_reads() && !NodeState::Crashed.accepts_data());
        assert!(NodeState::Draining.serves_reads() && !NodeState::Draining.accepts_data());
        assert!(NodeState::Recovering.serves_reads() && NodeState::Recovering.accepts_data());
    }

    #[test]
    fn wipe_clears_every_store() {
        let mut n = Node::new(NodeId(0), 1000);
        n.admit(desc(1, 100));
        n.admit_replica(desc(2, 50));
        n.wipe();
        assert_eq!(n.used_bytes(), 0);
        assert_eq!(n.replica_bytes(), 0);
        assert_eq!(n.chunk_count(), 0);
        assert_eq!(n.replica_count(), 0);
        assert_eq!(n.payload_count(), 0);
    }

    #[test]
    fn holds_and_descriptor_lookup() {
        let mut n = Node::new(NodeId(1), 1000);
        let d = desc(5, 42);
        n.admit(d);
        assert!(n.holds(&d.key));
        assert_eq!(n.descriptor(&d.key), Some(&d));
        assert!(!n.holds(&desc(6, 0).key));
    }
}
