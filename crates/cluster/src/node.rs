//! Simulated shared-nothing cluster nodes.

use array_model::{Chunk, ChunkDescriptor, ChunkKey};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Identifier of a cluster node. Nodes are numbered in join order and are
/// never removed — the paper's clusters grow monotonically (§5.1: "the
/// system never coalesces nodes").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One node: a storage budget plus the chunks resident on it.
///
/// Descriptors are always tracked; materialized runs additionally attach
/// each chunk's cell payload, which then travels with the descriptor
/// through rebalance moves. Payloads are held as shared `Arc<Chunk>`
/// handles — the same chunk object the catalog's whole-array oracle
/// copy holds — so attaching one is a refcount bump and a rebalance
/// moves the handle, never the cells.
#[derive(Debug, Clone)]
pub struct Node {
    /// This node's identifier.
    pub id: NodeId,
    /// Storage capacity in bytes (`c` in the paper; 100 GB per node in §6.1).
    pub capacity_bytes: u64,
    used_bytes: u64,
    chunks: BTreeMap<ChunkKey, ChunkDescriptor>,
    payloads: BTreeMap<ChunkKey, Arc<Chunk>>,
}

impl Node {
    /// A fresh, empty node.
    pub fn new(id: NodeId, capacity_bytes: u64) -> Self {
        Node {
            id,
            capacity_bytes,
            used_bytes: 0,
            chunks: BTreeMap::new(),
            payloads: BTreeMap::new(),
        }
    }

    /// Bytes currently stored.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Number of resident chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Fraction of capacity in use (may exceed 1.0 under overload).
    pub fn utilization(&self) -> f64 {
        if self.capacity_bytes == 0 {
            return 0.0;
        }
        self.used_bytes as f64 / self.capacity_bytes as f64
    }

    /// Is the chunk resident here?
    pub fn holds(&self, key: &ChunkKey) -> bool {
        self.chunks.contains_key(key)
    }

    /// The resident descriptor for `key`, if any.
    pub fn descriptor(&self, key: &ChunkKey) -> Option<&ChunkDescriptor> {
        self.chunks.get(key)
    }

    /// Iterate resident chunks in deterministic (key) order.
    pub fn descriptors(&self) -> impl Iterator<Item = &ChunkDescriptor> {
        self.chunks.values()
    }

    pub(crate) fn admit(&mut self, desc: ChunkDescriptor) {
        self.used_bytes += desc.bytes;
        self.chunks.insert(desc.key, desc);
    }

    /// Store a descriptor without touching the byte ledger. The parallel
    /// batch-placement path admits descriptors from per-node workers and
    /// applies the byte loads afterwards from the merged per-shard deltas
    /// (see `Cluster::place_batch`); the pair must always be used together.
    pub(crate) fn admit_descriptor(&mut self, desc: ChunkDescriptor) {
        self.chunks.insert(desc.key, desc);
    }

    /// Apply a byte-load delta accumulated by [`Node::admit_descriptor`].
    pub(crate) fn add_load(&mut self, bytes: u64) {
        self.used_bytes += bytes;
    }

    /// Remove a chunk and whatever payload it carries, keeping the
    /// descriptor/payload pair structurally inseparable: no eviction path
    /// can strand an orphaned payload on the node.
    pub(crate) fn evict(
        &mut self,
        key: &ChunkKey,
    ) -> Option<(ChunkDescriptor, Option<Arc<Chunk>>)> {
        let desc = self.chunks.remove(key)?;
        self.used_bytes -= desc.bytes;
        Some((desc, self.payloads.remove(key)))
    }

    /// The materialized payload of a resident chunk, when one is stored.
    pub fn payload(&self, key: &ChunkKey) -> Option<&Chunk> {
        self.payloads.get(key).map(Arc::as_ref)
    }

    /// The shared handle of a resident payload, when one is stored —
    /// lets callers prove zero-copy sharing (`Arc::ptr_eq`) or take a
    /// cheap co-owning reference.
    pub fn payload_shared(&self, key: &ChunkKey) -> Option<&Arc<Chunk>> {
        self.payloads.get(key)
    }

    /// Number of resident chunks carrying a materialized payload.
    pub fn payload_count(&self) -> usize {
        self.payloads.len()
    }

    pub(crate) fn store_payload(&mut self, key: ChunkKey, chunk: Arc<Chunk>) {
        self.payloads.insert(key, chunk);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use array_model::{ArrayId, ChunkCoords};

    fn desc(i: i64, bytes: u64) -> ChunkDescriptor {
        ChunkDescriptor::new(ChunkKey::new(ArrayId(0), ChunkCoords::new([i])), bytes, 1)
    }

    #[test]
    fn admit_and_evict_track_usage() {
        let mut n = Node::new(NodeId(0), 1000);
        n.admit(desc(1, 300));
        n.admit(desc(2, 200));
        assert_eq!(n.used_bytes(), 500);
        assert_eq!(n.chunk_count(), 2);
        assert!((n.utilization() - 0.5).abs() < 1e-12);
        let (evicted, payload) = n.evict(&desc(1, 300).key).unwrap();
        assert_eq!(evicted.bytes, 300);
        assert!(payload.is_none(), "no payload was attached");
        assert_eq!(n.used_bytes(), 200);
        assert!(n.evict(&desc(9, 0).key).is_none());
    }

    #[test]
    fn holds_and_descriptor_lookup() {
        let mut n = Node::new(NodeId(1), 1000);
        let d = desc(5, 42);
        n.admit(d);
        assert!(n.holds(&d.key));
        assert_eq!(n.descriptor(&d.key), Some(&d));
        assert!(!n.holds(&desc(6, 0).key));
    }
}
