//! Byte-flow contention solver.
//!
//! Inserts, rebalances, and query shuffles all reduce to a set of
//! point-to-point byte flows. [`FlowSet::elapsed_secs`] converts the set
//! into simulated wall-clock time under three constraints:
//!
//! 1. each endpoint is half-duplex: it is busy for its egress time plus
//!    its ingress time;
//! 2. ingress must also be written to disk (the slower of net/disk wins);
//! 3. the switch fabric carries a bounded aggregate rate, so total moved
//!    bytes impose a floor.
//!
//! The elapsed time is the largest of the per-endpoint busy times and the
//! fabric floor, plus a small per-chunk scheduling overhead amortized over
//! the destinations working in parallel.

use crate::cost::{gb, CostModel};
use crate::node::NodeId;
use std::collections::BTreeMap;

/// One directed transfer of `bytes` from `src` to `dst`.
///
/// `src == dst` models a purely local write (e.g. the coordinator keeping
/// its own share of an insert): it costs disk time only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flow {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Payload size in bytes.
    pub bytes: u64,
}

/// A batch of flows that execute concurrently.
#[derive(Debug, Clone, Default)]
pub struct FlowSet {
    flows: Vec<Flow>,
    chunk_count: u64,
}

impl FlowSet {
    /// An empty flow set.
    pub fn new() -> Self {
        FlowSet::default()
    }

    /// Add one chunk-sized flow.
    pub fn push(&mut self, src: NodeId, dst: NodeId, bytes: u64) {
        self.flows.push(Flow { src, dst, bytes });
        self.chunk_count = self.chunk_count.saturating_add(1);
    }

    /// Number of chunk transfers recorded.
    pub fn chunk_count(&self) -> u64 {
        self.chunk_count
    }

    /// Fold every flow of `other` into this set — drain moves and the
    /// replica repairs that follow them cost out as one concurrent batch.
    pub fn merge(&mut self, other: &FlowSet) {
        self.flows.extend_from_slice(&other.flows);
        self.chunk_count = self.chunk_count.saturating_add(other.chunk_count);
    }

    /// Total payload bytes (local and remote). Saturating: a pathological
    /// fault schedule that piles up near-`u64::MAX` flows must clamp at
    /// the ceiling, not wrap into a bogus short repair time.
    pub fn total_bytes(&self) -> u64 {
        self.flows.iter().fold(0u64, |acc, f| acc.saturating_add(f.bytes))
    }

    /// Bytes that actually cross the network (saturating, see
    /// [`FlowSet::total_bytes`]).
    pub fn network_bytes(&self) -> u64 {
        self.flows
            .iter()
            .filter(|f| f.src != f.dst)
            .fold(0u64, |acc, f| acc.saturating_add(f.bytes))
    }

    /// True when nothing moves.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Naive serial estimate: every byte moves one after another at the
    /// network rate (local bytes at the disk rate). This is what a model
    /// *without* endpoint parallelism would predict; the ablation bench
    /// compares it against the contention solver to show why Round
    /// Robin's wide reshuffles still finish in bounded time (the paper's
    /// remark that its "circular addressing parallelizes the transfer").
    pub fn elapsed_secs_serial(&self, cost: &CostModel) -> f64 {
        let mut secs = 0.0;
        for f in &self.flows {
            secs += if f.src == f.dst {
                cost.local_write_secs(f.bytes)
            } else {
                cost.egress_secs(f.bytes)
            };
        }
        secs + cost.per_chunk_overhead_secs * self.chunk_count as f64
    }

    /// Simulated elapsed seconds for the whole batch.
    pub fn elapsed_secs(&self, cost: &CostModel) -> f64 {
        if self.flows.is_empty() {
            return 0.0;
        }
        // Per-endpoint ingress/egress byte tallies.
        let mut egress: BTreeMap<NodeId, u64> = BTreeMap::new();
        let mut ingress: BTreeMap<NodeId, u64> = BTreeMap::new();
        let mut local: BTreeMap<NodeId, u64> = BTreeMap::new();
        let mut destinations: BTreeMap<NodeId, ()> = BTreeMap::new();
        for f in &self.flows {
            destinations.insert(f.dst, ());
            if f.src == f.dst {
                let e = local.entry(f.src).or_default();
                *e = e.saturating_add(f.bytes);
            } else {
                let e = egress.entry(f.src).or_default();
                *e = e.saturating_add(f.bytes);
                let e = ingress.entry(f.dst).or_default();
                *e = e.saturating_add(f.bytes);
            }
        }

        let mut busiest: f64 = 0.0;
        let mut endpoints: Vec<NodeId> = Vec::new();
        endpoints.extend(egress.keys().copied());
        endpoints.extend(ingress.keys().copied());
        endpoints.extend(local.keys().copied());
        endpoints.sort_unstable();
        endpoints.dedup();
        for ep in endpoints {
            let out = egress.get(&ep).copied().unwrap_or(0);
            let inb = ingress.get(&ep).copied().unwrap_or(0);
            let loc = local.get(&ep).copied().unwrap_or(0);
            let busy =
                cost.egress_secs(out) + cost.remote_ingest_secs(inb) + cost.local_write_secs(loc);
            busiest = busiest.max(busy);
        }

        let fabric = gb(self.network_bytes()) * cost.fabric_secs_per_gb;
        let overhead = cost.per_chunk_overhead_secs * self.chunk_count as f64
            / destinations.len().max(1) as f64;
        busiest.max(fabric) + overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel {
            disk_secs_per_gb: 8.0,
            net_secs_per_gb: 12.0,
            fabric_secs_per_gb: 12.0 / 2.5,
            per_chunk_overhead_secs: 0.0,
            cpu_secs_per_gb: 0.0,
            net_latency_secs: 0.0,
        }
    }

    const GB: u64 = 1_000_000_000;

    #[test]
    fn empty_set_costs_nothing() {
        assert_eq!(FlowSet::new().elapsed_secs(&model()), 0.0);
    }

    #[test]
    fn local_write_is_disk_only() {
        let mut fs = FlowSet::new();
        fs.push(NodeId(0), NodeId(0), GB);
        assert!((fs.elapsed_secs(&model()) - 8.0).abs() < 1e-9);
        assert_eq!(fs.network_bytes(), 0);
    }

    #[test]
    fn single_remote_flow_pays_network_rate() {
        let mut fs = FlowSet::new();
        fs.push(NodeId(0), NodeId(1), GB);
        // src busy 12s; dst busy max(12,8)=12s; fabric 4.8s -> 12s.
        assert!((fs.elapsed_secs(&model()) - 12.0).abs() < 1e-9);
    }

    #[test]
    fn half_duplex_sums_in_and_out() {
        // Node 1 both sheds and receives 1 GB: its busy time is 12 + 12.
        let mut fs = FlowSet::new();
        fs.push(NodeId(1), NodeId(2), GB);
        fs.push(NodeId(0), NodeId(1), GB);
        assert!((fs.elapsed_secs(&model()) - 24.0).abs() < 1e-9);
    }

    #[test]
    fn fabric_floor_binds_wide_reshuffles() {
        // 8 disjoint pairs moving 1 GB each: every endpoint is busy only
        // 12 s, but 8 GB cross the fabric at 4.8 s/GB = 38.4 s.
        let mut fs = FlowSet::new();
        for i in 0..8u32 {
            fs.push(NodeId(i), NodeId(100 + i), GB);
        }
        assert!((fs.elapsed_secs(&model()) - 38.4).abs() < 1e-9);
    }

    #[test]
    fn parallel_fanout_beats_serial_fanin() {
        // One source feeding two sinks is bounded by source egress;
        // two sources feeding one sink is bounded by sink ingest.
        let m = model();
        let mut fanout = FlowSet::new();
        fanout.push(NodeId(0), NodeId(1), GB);
        fanout.push(NodeId(0), NodeId(2), GB);
        let mut fanin = FlowSet::new();
        fanin.push(NodeId(1), NodeId(0), GB);
        fanin.push(NodeId(2), NodeId(0), GB);
        assert!((fanout.elapsed_secs(&m) - 24.0).abs() < 1e-9);
        assert!((fanin.elapsed_secs(&m) - 24.0).abs() < 1e-9);
        // but splitting across distinct pairs is genuinely parallel
        let mut pairs = FlowSet::new();
        pairs.push(NodeId(0), NodeId(1), GB);
        pairs.push(NodeId(2), NodeId(3), GB);
        assert!(pairs.elapsed_secs(&m) < 24.0);
    }

    #[test]
    fn serial_estimate_upper_bounds_the_solver() {
        let m = model();
        let mut fs = FlowSet::new();
        for i in 0..6u32 {
            fs.push(NodeId(i), NodeId(10 + i), GB);
        }
        assert!(fs.elapsed_secs_serial(&m) > fs.elapsed_secs(&m));
        // Serial = 6 GB * 12 s/GB.
        assert!((fs.elapsed_secs_serial(&m) - 72.0).abs() < 1e-9);
    }

    #[test]
    fn empty_set_reports_empty_everywhere() {
        let fs = FlowSet::new();
        assert!(fs.is_empty());
        assert_eq!(fs.chunk_count(), 0);
        assert_eq!(fs.total_bytes(), 0);
        assert_eq!(fs.network_bytes(), 0);
        assert_eq!(fs.elapsed_secs(&model()), 0.0);
        // The serial estimate agrees: nothing moves, nothing costs.
        assert_eq!(fs.elapsed_secs_serial(&model()), 0.0);
    }

    #[test]
    fn all_local_flows_are_disk_parallel_across_nodes() {
        // Four nodes each writing 1 GB locally: disks spin in parallel, so
        // the batch takes one node's disk time (8 s), not four (32 s) —
        // and nothing touches the network or the fabric floor.
        let m = model();
        let mut fs = FlowSet::new();
        for i in 0..4u32 {
            fs.push(NodeId(i), NodeId(i), GB);
        }
        assert_eq!(fs.network_bytes(), 0);
        assert!((fs.elapsed_secs(&m) - 8.0).abs() < 1e-9);
        // Same node writing all four: the disk serializes them.
        let mut stacked = FlowSet::new();
        for _ in 0..4 {
            stacked.push(NodeId(0), NodeId(0), GB);
        }
        assert!((stacked.elapsed_secs(&m) - 32.0).abs() < 1e-9);
    }

    #[test]
    fn saturated_endpoint_beats_fabric_floor_until_width_flips_it() {
        let m = model();
        // One source fanning 4 GB out to four sinks: egress binds at
        // 4 x 12 = 48 s, far above the fabric floor of 4 x 4.8 = 19.2 s.
        let mut fanout = FlowSet::new();
        for i in 1..=4u32 {
            fanout.push(NodeId(0), NodeId(i), GB);
        }
        assert!((fanout.elapsed_secs(&m) - 48.0).abs() < 1e-9);
        // The same 4 GB split across disjoint pairs: every endpoint is
        // busy only 12 s, so the fabric floor (19.2 s) takes over as the
        // binding constraint of the three-way max.
        let mut wide = FlowSet::new();
        for i in 0..4u32 {
            wide.push(NodeId(i), NodeId(10 + i), GB);
        }
        assert!((wide.elapsed_secs(&m) - 19.2).abs() < 1e-9);
    }

    #[test]
    fn byte_tallies_saturate_instead_of_wrapping() {
        // Two flows whose byte sum exceeds u64::MAX: every accumulation
        // path (totals, per-endpoint tallies) must clamp at the ceiling.
        // A wrapping sum would report a tiny byte count and therefore a
        // bogus *short* elapsed time; saturation keeps the estimate a
        // monotone upper envelope.
        let m = model();
        let mut fs = FlowSet::new();
        fs.push(NodeId(0), NodeId(1), u64::MAX - 5);
        fs.push(NodeId(0), NodeId(1), 100);
        assert_eq!(fs.total_bytes(), u64::MAX);
        assert_eq!(fs.network_bytes(), u64::MAX);
        let one = {
            let mut one = FlowSet::new();
            one.push(NodeId(0), NodeId(1), u64::MAX - 5);
            one.elapsed_secs(&m)
        };
        // The saturated pair can never finish sooner than its larger flow
        // alone — the signature a wrap-around would violate.
        assert!(fs.elapsed_secs(&m) >= one);

        // Local-write and ingress tallies saturate too.
        let mut loc = FlowSet::new();
        loc.push(NodeId(3), NodeId(3), u64::MAX - 1);
        loc.push(NodeId(3), NodeId(3), 64);
        assert_eq!(loc.total_bytes(), u64::MAX);
        assert_eq!(loc.network_bytes(), 0);
        let solo = {
            let mut solo = FlowSet::new();
            solo.push(NodeId(3), NodeId(3), u64::MAX - 1);
            solo.elapsed_secs(&m)
        };
        assert!(loc.elapsed_secs(&m) >= solo);
    }

    #[test]
    fn chunk_count_saturates_at_u64_max() {
        let mut fs = FlowSet::new();
        fs.chunk_count = u64::MAX - 1;
        fs.push(NodeId(0), NodeId(1), 1);
        fs.push(NodeId(0), NodeId(1), 1);
        assert_eq!(fs.chunk_count(), u64::MAX);
    }

    #[test]
    fn overhead_amortizes_over_destinations() {
        let mut m = model();
        m.per_chunk_overhead_secs = 1.0;
        let mut fs = FlowSet::new();
        fs.push(NodeId(0), NodeId(1), 0);
        fs.push(NodeId(0), NodeId(2), 0);
        fs.push(NodeId(0), NodeId(2), 0);
        fs.push(NodeId(0), NodeId(1), 0);
        // 4 chunks over 2 destinations -> 2 s of overhead.
        assert!((fs.elapsed_secs(&m) - 2.0).abs() < 1e-9);
    }
}
