//! Deterministic crash recovery: repair planning, costed execution, and
//! bounded retry with exponential backoff.
//!
//! # Lifecycle state machine
//!
//! Every node carries a [`NodeState`](crate::NodeState); the legal
//! transitions, all driven by explicit `Cluster` calls, are:
//!
//! ```text
//!            crash_node                revive_node
//!  Healthy ─────────────▶ Crashed ─────────────────▶ Recovering
//!     │ ▲                    ▲                            │
//!     │ │ mark_recovered     │ crash_node                 │ mark_recovered
//!     ▼ │                    │                            ▼
//!  Draining ─────────────────┘                         Healthy
//! ```
//!
//! The failure model is **fail-stop with total local-storage loss**: a
//! crash wipes the node's primary and replica stores and zeroes both
//! byte ledgers. `Draining` (scale-IN preparation) keeps serving reads
//! but accepts no new data, so every routing path — primary placement
//! diversion, replica rings, repair targets — walks around it.
//! `Recovering` is the inverse: a revived node rejoins empty and accepts
//! data again, which is exactly how repair refills it.
//!
//! # Repair-plan derivation
//!
//! [`Cluster::plan_recovery`] scans placements in deterministic
//! (ascending-key) order and counts each chunk's **serving copies** from
//! the actual node stores — the ground truth, never a re-derived route.
//! A chunk below the effective target `min(k, data-hosting nodes)` gets
//! one [`RepairJob`] per missing copy: the source is the serving primary
//! (crash-time promotion keeps primaries alive whenever any copy
//! survived), else the first serving replica holder; targets come from
//! the chunk's deterministic replica ring, skipping the primary, current
//! holders, and every node not accepting data. Chunks with zero serving
//! copies are unrecoverable from within the cluster and are reported,
//! not silently dropped.
//!
//! [`Cluster::execute_recovery`] replays the plan against live state:
//! each job re-validates its source and target (both may have failed
//! since planning — or *during* execution, which the `mid_crash` hook of
//! [`Cluster::execute_recovery_with`] injects deterministically) and
//! falls over to an alternate serving source or the next ring target.
//! Completed copies land in the replica books, and every transfer is
//! pushed into one [`FlowSet`] so recovery time runs through the same
//! half-duplex/fabric contention solver as rebalance — repair is costed,
//! never free.
//!
//! # Backoff policy
//!
//! A failed attempt — the planned source found dead, or a flow dropped by
//! injected [`Flakiness`] — costs `delay_for(attempt) = base_secs ×
//! factor^attempt` of simulated wall-clock before the retry, bounded by
//! `max_retries`; a job that exhausts its budget is reported
//! unrecovered. Flakiness is a pure function of `(seed, chunk key,
//! attempt)` via the in-tree splitmix64, so every schedule replays
//! bit-identically.

use crate::cluster::Cluster;
use crate::cost::CostModel;
use crate::node::NodeId;
use crate::placement::{key_hash, splitmix64};
use crate::transfer::FlowSet;
use array_model::ChunkKey;
use std::sync::Arc;

/// One planned re-replication: copy `key` (`bytes` on the wire) from
/// `source` to `target`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairJob {
    /// The under-replicated chunk.
    pub key: ChunkKey,
    /// Bytes the copy moves (the descriptor's declared size).
    pub bytes: u64,
    /// Serving node the copy reads from.
    pub source: NodeId,
    /// Node the new replica lands on.
    pub target: NodeId,
}

/// The deterministic output of [`Cluster::plan_recovery`].
#[derive(Debug, Clone, Default)]
pub struct RepairPlan {
    /// One entry per missing copy, in ascending chunk-key order.
    pub jobs: Vec<RepairJob>,
    /// Chunks with **zero** serving copies: nothing inside the cluster
    /// can source a repair (k=1 losses, or deeper failures than `k−1`).
    pub unrecoverable: Vec<ChunkKey>,
}

impl RepairPlan {
    /// No repairs needed and nothing lost.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty() && self.unrecoverable.is_empty()
    }

    /// Total bytes the planned copies would move.
    pub fn total_bytes(&self) -> u64 {
        self.jobs.iter().fold(0u64, |acc, j| acc.saturating_add(j.bytes))
    }
}

/// Exponential-backoff retry budget for repair flows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffPolicy {
    /// Simulated seconds charged before the first retry.
    pub base_secs: f64,
    /// Multiplier per successive retry.
    pub factor: f64,
    /// Attempts beyond the first before a job is abandoned.
    pub max_retries: u32,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy { base_secs: 0.5, factor: 2.0, max_retries: 5 }
    }
}

impl BackoffPolicy {
    /// Delay charged after failed attempt number `attempt` (0-based):
    /// `base_secs × factor^attempt`.
    pub fn delay_for(&self, attempt: u32) -> f64 {
        self.base_secs * self.factor.powi(attempt as i32)
    }
}

/// Deterministic flow-failure injection: attempt `a` of chunk `key`
/// fails iff `splitmix64(seed ⊕ hash(key) ⊕ a)` scales below `p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Flakiness {
    /// Per-attempt failure probability in `[0, 1]`.
    pub p: f64,
    /// Seed decorrelating schedules from each other.
    pub seed: u64,
}

impl Flakiness {
    fn fails(&self, key: &ChunkKey, attempt: u32) -> bool {
        let h = splitmix64(self.seed ^ key_hash(key) ^ (u64::from(attempt) << 32));
        ((h >> 11) as f64 / (1u64 << 53) as f64) < self.p
    }
}

/// Deterministic mid-repair failure injection: crash `node` after
/// `after_jobs` jobs of the plan have been processed — the "a flow's
/// source also fails mid-repair" scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MidCrash {
    /// Jobs processed before the crash fires.
    pub after_jobs: usize,
    /// The node that fails.
    pub node: NodeId,
}

/// What a recovery pass accomplished and what it cost.
#[derive(Debug, Clone, Default)]
pub struct RecoveryOutcome {
    /// Every completed repair transfer; feed to
    /// [`FlowSet::elapsed_secs`] (or [`RecoveryOutcome::repair_secs`])
    /// for the contention-solved wall clock.
    pub flows: FlowSet,
    /// Copies successfully re-replicated.
    pub repaired: usize,
    /// Jobs skipped because live state no longer needed them (a crash
    /// promotion or an earlier job already restored the copy).
    pub skipped: usize,
    /// Failed attempts that were retried.
    pub retries: u32,
    /// Simulated seconds spent waiting in exponential backoff.
    pub backoff_secs: f64,
    /// Chunks whose repair was abandoned: retry budget exhausted, or no
    /// serving source / eligible target remained.
    pub unrecovered: Vec<ChunkKey>,
}

impl RecoveryOutcome {
    /// Bytes actually moved by completed repairs.
    pub fn repair_bytes(&self) -> u64 {
        self.flows.total_bytes()
    }

    /// Simulated recovery wall clock: the repair flows through the
    /// half-duplex/fabric contention solver, plus backoff waits.
    pub fn repair_secs(&self, cost: &CostModel) -> f64 {
        self.flows.elapsed_secs(cost) + self.backoff_secs
    }
}

impl Cluster {
    /// Serving copies of `key` counted from actual node stores: the
    /// primary (when its node serves reads and still holds it) plus every
    /// serving replica holder.
    pub(crate) fn serving_copies(&self, key: &ChunkKey) -> usize {
        let primary = self
            .placement
            .get(key)
            .map(|p| &self.nodes[p.0 as usize])
            .is_some_and(|n| n.state().serves_reads() && n.holds(key));
        usize::from(primary)
            + self
                .replica_holders(key)
                .iter()
                .filter(|r| self.nodes[r.0 as usize].state().serves_reads())
                .count()
    }

    /// Effective per-chunk copy target right now.
    fn effective_target(&self) -> usize {
        let hosts = self.nodes.iter().filter(|n| n.state().accepts_data()).count();
        self.replication.min(hosts.max(1))
    }

    /// Derive the deterministic repair plan for the cluster's current
    /// state (see the module docs for the derivation rules). Read-only;
    /// execute with [`Cluster::execute_recovery`].
    pub fn plan_recovery(&self) -> RepairPlan {
        let target = self.effective_target();
        let mut plan = RepairPlan::default();
        for (key, primary) in self.placement.collect_sorted() {
            let pn = &self.nodes[primary.0 as usize];
            let primary_alive = pn.state().serves_reads() && pn.holds(&key);
            let holders = self.replica_holders(&key);
            let serving_replicas =
                holders.iter().filter(|r| self.nodes[r.0 as usize].state().serves_reads()).count();
            let copies = usize::from(primary_alive) + serving_replicas;
            if copies == 0 {
                plan.unrecoverable.push(key);
                continue;
            }
            if copies >= target {
                continue;
            }
            let (source, bytes) = if primary_alive {
                (primary, pn.descriptor(&key).map_or(0, |d| d.bytes))
            } else {
                let src = holders
                    .iter()
                    .copied()
                    .find(|r| self.nodes[r.0 as usize].state().serves_reads())
                    .expect("copies > 0 implies a serving holder");
                (src, self.nodes[src.0 as usize].replica_descriptor(&key).map_or(0, |d| d.bytes))
            };
            let mut deficit = target - copies;
            let len = self.nodes.len();
            let start = self.replica_ring_start(&key);
            for step in 0..len {
                if deficit == 0 {
                    break;
                }
                let idx = (start + step) % len;
                let cand = self.nodes[idx].id;
                if cand == primary
                    || !self.nodes[idx].state().accepts_data()
                    || holders.contains(&cand)
                {
                    continue;
                }
                plan.jobs.push(RepairJob { key, bytes, source, target: cand });
                deficit -= 1;
            }
        }
        plan
    }

    /// Execute a repair plan with the default fault-free environment.
    pub fn execute_recovery(
        &mut self,
        plan: &RepairPlan,
        policy: &BackoffPolicy,
    ) -> RecoveryOutcome {
        self.execute_recovery_with(plan, policy, None, None)
    }

    /// Execute a repair plan under injected faults: optional
    /// [`Flakiness`] dropping individual flow attempts, and an optional
    /// [`MidCrash`] felling a node partway through — after which affected
    /// jobs re-resolve their source (one backoff-charged retry) or
    /// target, exactly as the module docs describe. Infallible by
    /// design: what cannot be repaired is reported in
    /// [`RecoveryOutcome::unrecovered`], and the plan's own
    /// unrecoverable chunks carry over.
    pub fn execute_recovery_with(
        &mut self,
        plan: &RepairPlan,
        policy: &BackoffPolicy,
        flaky: Option<Flakiness>,
        mid_crash: Option<MidCrash>,
    ) -> RecoveryOutcome {
        let mut out = RecoveryOutcome {
            unrecovered: plan.unrecoverable.clone(),
            ..RecoveryOutcome::default()
        };
        for (j, job) in plan.jobs.iter().enumerate() {
            if let Some(mc) = mid_crash {
                if mc.after_jobs == j {
                    // The injected failure may be refused (last serving
                    // node); recovery proceeds against whatever survives.
                    let _ = self.crash_node(mc.node);
                }
            }
            // Live state may have healed this chunk already (a crash
            // promotion consumed the copy, or an earlier job landed it).
            if self.serving_copies(&job.key) >= self.effective_target()
                || self.replica_holders(&job.key).contains(&job.target)
            {
                out.skipped += 1;
                continue;
            }
            let mut attempt: u32 = 0;
            loop {
                let planned_ok = self.source_serves(&job.key, job.source);
                let source =
                    if planned_ok { Some(job.source) } else { self.alternate_source(&job.key) };
                let Some(src) = source else {
                    out.unrecovered.push(job.key);
                    break;
                };
                let flaked = flaky.is_some_and(|f| f.fails(&job.key, attempt));
                if flaked || (!planned_ok && attempt == 0) {
                    // First failure against a dead planned source, or an
                    // injected flow drop: pay backoff and retry.
                    if attempt >= policy.max_retries {
                        out.unrecovered.push(job.key);
                        break;
                    }
                    out.backoff_secs += policy.delay_for(attempt);
                    out.retries += 1;
                    attempt += 1;
                    continue;
                }
                let target = self.resolve_target(&job.key, job.target);
                let Some(tgt) = target else {
                    out.unrecovered.push(job.key);
                    break;
                };
                let (desc, payload) = {
                    let sn = &self.nodes[src.0 as usize];
                    match sn.descriptor(&job.key) {
                        Some(d) => (*d, sn.payload_shared(&job.key).cloned()),
                        None => {
                            let d = sn
                                .replica_descriptor(&job.key)
                                .expect("serving source holds a copy");
                            (*d, sn.replica_payload_shared(&job.key).cloned())
                        }
                    }
                };
                self.nodes[tgt.0 as usize].admit_replica(desc);
                if let Some(chunk) = payload {
                    self.nodes[tgt.0 as usize].store_replica_payload(job.key, Arc::clone(&chunk));
                }
                self.replicas.entry(job.key).or_default().push(tgt);
                out.flows.push(src, tgt, desc.bytes);
                out.repaired += 1;
                break;
            }
        }
        out
    }

    /// Does `node` still serve a copy (primary or replica) of `key`?
    fn source_serves(&self, key: &ChunkKey, node: NodeId) -> bool {
        self.nodes
            .get(node.0 as usize)
            .is_some_and(|n| n.state().serves_reads() && (n.holds(key) || n.holds_replica(key)))
    }

    /// The deterministic fallback source: the serving primary, else the
    /// first serving replica holder in route order.
    fn alternate_source(&self, key: &ChunkKey) -> Option<NodeId> {
        if let Some(primary) = self.placement.get(key) {
            if self.source_serves(key, primary) {
                return Some(primary);
            }
        }
        self.replica_holders(key).iter().copied().find(|&r| self.source_serves(key, r))
    }

    /// The planned target if it still accepts data, else the next
    /// eligible node on the chunk's replica ring.
    fn resolve_target(&self, key: &ChunkKey, planned: NodeId) -> Option<NodeId> {
        let ok = |id: NodeId| {
            let n = &self.nodes[id.0 as usize];
            n.state().accepts_data()
                && Some(id) != self.placement.get(key)
                && !self.replica_holders(key).contains(&id)
        };
        if ok(planned) {
            return Some(planned);
        }
        let len = self.nodes.len();
        let start = self.replica_ring_start(key);
        (0..len).map(|step| self.nodes[(start + step) % len].id).find(|&c| ok(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::node::NodeState;
    use array_model::{ArrayId, ChunkCoords, ChunkDescriptor};

    fn desc(i: i64, bytes: u64) -> ChunkDescriptor {
        ChunkDescriptor::new(ChunkKey::new(ArrayId(0), ChunkCoords::new([i])), bytes, 1)
    }

    fn replicated_cluster(nodes: usize, k: usize, chunks: i64) -> Cluster {
        let mut c = Cluster::with_replication(nodes, 1_000_000, CostModel::default(), k).unwrap();
        for i in 0..chunks {
            c.place(desc(i, 100), NodeId((i % nodes as i64) as u32)).unwrap();
        }
        c
    }

    #[test]
    fn k1_cluster_plans_no_repairs_when_healthy() {
        let c = replicated_cluster(4, 1, 16);
        assert!(c.plan_recovery().is_empty());
        assert!(c.replica_census().is_full_strength());
    }

    #[test]
    fn crash_then_recovery_restores_full_strength() {
        let mut c = replicated_cluster(4, 2, 32);
        assert!(c.replica_census().is_full_strength());
        let report = c.crash_node(NodeId(1)).unwrap();
        assert_eq!(report.lost_primaries, 8);
        assert_eq!(report.promoted, 8, "every k=2 chunk has a surviving replica");
        assert!(report.orphaned.is_empty());
        // Promotion restores primaries; the census is under-replicated
        // until recovery rebuilds the consumed replicas.
        let census = c.replica_census();
        assert!(!census.is_full_strength());
        assert_eq!(census.lost, 0);

        let plan = c.plan_recovery();
        assert!(!plan.jobs.is_empty());
        assert!(plan.unrecoverable.is_empty());
        let outcome = c.execute_recovery(&plan, &BackoffPolicy::default());
        assert_eq!(outcome.unrecovered, vec![]);
        assert_eq!(outcome.retries, 0);
        assert!(outcome.repair_bytes() > 0, "repair moved real bytes");
        assert!(outcome.repair_secs(&CostModel::default()) > 0.0);
        assert!(c.replica_census().is_full_strength());
        c.verify_replica_books().unwrap();
        assert!(c.plan_recovery().is_empty(), "recovery converges");
    }

    #[test]
    fn k1_crash_orphans_are_reported_not_repaired() {
        let mut c = replicated_cluster(3, 1, 9);
        let report = c.crash_node(NodeId(2)).unwrap();
        assert_eq!(report.promoted, 0);
        assert_eq!(report.orphaned.len(), 3);
        let plan = c.plan_recovery();
        assert!(plan.jobs.is_empty(), "no source exists for k=1 losses");
        assert_eq!(plan.unrecoverable.len(), 3);
        let outcome = c.execute_recovery(&plan, &BackoffPolicy::default());
        assert_eq!(outcome.unrecovered.len(), 3);
        assert_eq!(c.replica_census().lost, 3);
    }

    #[test]
    fn mid_repair_source_crash_retries_with_backoff() {
        let mut c = replicated_cluster(4, 3, 24);
        c.crash_node(NodeId(1)).unwrap();
        let plan = c.plan_recovery();
        assert!(!plan.jobs.is_empty());
        // Fell one of the plan's sources right before its first job runs.
        let victim = plan.jobs[0].source;
        let mid = MidCrash { after_jobs: 0, node: victim };
        let policy = BackoffPolicy::default();
        let outcome = c.execute_recovery_with(&plan, &policy, None, Some(mid));
        assert!(outcome.retries > 0, "dead planned source costs a retry");
        assert!(outcome.backoff_secs >= policy.base_secs);
        c.verify_replica_books().unwrap();
        // Converge with follow-up passes (the second crash spawned new
        // deficits that the in-flight plan could not know about).
        for _ in 0..3 {
            let p = c.plan_recovery();
            if p.jobs.is_empty() {
                break;
            }
            c.execute_recovery(&p, &policy);
        }
        assert!(c.replica_census().is_full_strength());
    }

    #[test]
    fn flaky_flows_retry_deterministically() {
        let policy = BackoffPolicy { base_secs: 1.0, factor: 2.0, max_retries: 8 };
        let flaky = Flakiness { p: 0.5, seed: 7 };
        let run = |_: ()| {
            let mut c = replicated_cluster(5, 2, 40);
            c.crash_node(NodeId(2)).unwrap();
            let plan = c.plan_recovery();
            c.execute_recovery_with(&plan, &policy, Some(flaky), None)
        };
        let a = run(());
        let b = run(());
        assert!(a.retries > 0, "p=0.5 over dozens of jobs must drop some attempts");
        assert_eq!(a.retries, b.retries, "flakiness is a pure function of the seed");
        assert_eq!(a.backoff_secs.to_bits(), b.backoff_secs.to_bits());
        assert_eq!(a.repaired, b.repaired);
    }

    #[test]
    fn backoff_policy_is_exponential() {
        let p = BackoffPolicy { base_secs: 0.25, factor: 2.0, max_retries: 4 };
        assert_eq!(p.delay_for(0), 0.25);
        assert_eq!(p.delay_for(1), 0.5);
        assert_eq!(p.delay_for(3), 2.0);
    }

    #[test]
    fn draining_nodes_serve_repairs_but_receive_none() {
        let mut c = replicated_cluster(4, 2, 16);
        c.start_draining(NodeId(3)).unwrap();
        c.crash_node(NodeId(0)).unwrap();
        let plan = c.plan_recovery();
        for job in &plan.jobs {
            assert_ne!(job.target, NodeId(3), "draining nodes accept no repairs");
        }
        let outcome = c.execute_recovery(&plan, &BackoffPolicy::default());
        assert!(outcome.unrecovered.is_empty());
        c.verify_replica_books().unwrap();
    }

    #[test]
    fn revived_node_refills_through_recovery() {
        let mut c = replicated_cluster(3, 2, 12);
        c.crash_node(NodeId(1)).unwrap();
        let plan = c.plan_recovery();
        let outcome = c.execute_recovery(&plan, &BackoffPolicy::default());
        assert!(outcome.unrecovered.is_empty());
        // Revive: the node rejoins empty, in Recovering, and subsequent
        // repair passes may land copies on it again.
        c.revive_node(NodeId(1)).unwrap();
        assert_eq!(c.node(NodeId(1)).unwrap().used_bytes(), 0);
        assert!(c.node(NodeId(1)).unwrap().state().accepts_data());
        c.mark_recovered(NodeId(1)).unwrap();
        assert_eq!(c.node(NodeId(1)).unwrap().state(), NodeState::Healthy);
        // Double-revive of a healthy node is a typed error.
        assert!(matches!(
            c.revive_node(NodeId(1)),
            Err(crate::ClusterError::NodeUnavailable { .. })
        ));
    }
}
