//! The byte-flow cost model: how long data movement and scanning take.
//!
//! The paper's experiments are I/O- and network-bound; its analytical model
//! (§5.2) prices inserts and rebalances at δ seconds per GB of local disk
//! work and t seconds per GB of network transfer, with both constants
//! "derived empirically". This module makes those constants explicit and
//! adds two pieces of physical realism the endpoint arithmetic needs:
//!
//! * **half-duplex endpoints** — a node that is simultaneously shedding and
//!   receiving chunks (as in a global reshuffle) is busy for the *sum* of
//!   both directions, which is exactly why the paper's global partitioners
//!   pay ~2.5× the reorganization time of the incremental ones;
//! * **fabric bisection bandwidth** — the switch carries a bounded number
//!   of concurrent full-rate streams, so reshuffles that move more total
//!   bytes cannot hide them all behind per-node parallelism.

use serde::{Deserialize, Serialize};

/// Bytes per gigabyte (decimal, as the paper uses storage GB).
pub const BYTES_PER_GB: f64 = 1_000_000_000.0;

/// Convert bytes to (decimal) gigabytes.
pub fn gb(bytes: u64) -> f64 {
    bytes as f64 / BYTES_PER_GB
}

/// Cost constants for the simulated cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// δ — seconds per GB of local disk I/O (read or write). Default 8 s/GB
    /// (~125 MB/s, a 2014-era SATA array).
    pub disk_secs_per_gb: f64,
    /// t — seconds per GB of point-to-point network transfer. Default
    /// 12 s/GB (~83 MB/s effective on gigabit Ethernet). t > δ, matching
    /// the paper's remark that Append pays for "the more costly network
    /// link".
    pub net_secs_per_gb: f64,
    /// Seconds per GB crossing the switch fabric in aggregate. Default t/2.5:
    /// the fabric sustains ~2.5 concurrent full-rate streams.
    pub fabric_secs_per_gb: f64,
    /// Fixed scheduling/handshake overhead per chunk moved or inserted.
    pub per_chunk_overhead_secs: f64,
    /// Seconds of CPU per GB scanned by query operators.
    pub cpu_secs_per_gb: f64,
    /// One-way latency of a cross-node request (halo fetch, kNN hop).
    pub net_latency_secs: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        let net = 12.0;
        CostModel {
            disk_secs_per_gb: 8.0,
            net_secs_per_gb: net,
            fabric_secs_per_gb: net / 2.5,
            per_chunk_overhead_secs: 0.01,
            cpu_secs_per_gb: 4.0,
            net_latency_secs: 0.05,
        }
    }
}

impl CostModel {
    /// Seconds for one node to write `bytes` arriving over the network
    /// (receive and write overlap; the slower path is the bottleneck).
    pub fn remote_ingest_secs(&self, bytes: u64) -> f64 {
        gb(bytes) * self.net_secs_per_gb.max(self.disk_secs_per_gb)
    }

    /// Seconds for a purely local write of `bytes`.
    pub fn local_write_secs(&self, bytes: u64) -> f64 {
        gb(bytes) * self.disk_secs_per_gb
    }

    /// Seconds to push `bytes` onto the wire.
    pub fn egress_secs(&self, bytes: u64) -> f64 {
        gb(bytes) * self.net_secs_per_gb
    }

    /// Seconds of CPU to scan `bytes`.
    pub fn scan_secs(&self, bytes: u64) -> f64 {
        gb(bytes) * (self.disk_secs_per_gb + self.cpu_secs_per_gb)
    }

    /// Seconds a requester waits for a synchronous remote fetch: request
    /// latency, the holder's disk read, the wire transfer, and local
    /// processing. Roughly twice the cost of scanning the same bytes
    /// locally — the premium that makes spatial clustering pay.
    pub fn remote_fetch_secs(&self, bytes: u64) -> f64 {
        self.net_latency_secs
            + gb(bytes) * (self.disk_secs_per_gb + self.net_secs_per_gb + self.cpu_secs_per_gb)
    }

    /// Seconds of pure CPU over `bytes` already resident in memory
    /// (buffer-pool hits, k-means re-iterations).
    pub fn cpu_secs(&self, bytes: u64) -> f64 {
        gb(bytes) * self.cpu_secs_per_gb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gb_conversion() {
        assert!((gb(2_500_000_000) - 2.5).abs() < 1e-12);
        assert_eq!(gb(0), 0.0);
    }

    #[test]
    fn default_model_is_network_bound() {
        let m = CostModel::default();
        assert!(m.net_secs_per_gb > m.disk_secs_per_gb);
        assert!(m.fabric_secs_per_gb < m.net_secs_per_gb);
    }

    #[test]
    fn ingest_takes_slower_of_net_and_disk() {
        let m = CostModel::default();
        let one_gb = 1_000_000_000;
        assert!((m.remote_ingest_secs(one_gb) - 12.0).abs() < 1e-9);
        assert!((m.local_write_secs(one_gb) - 8.0).abs() < 1e-9);
    }
}
