//! Checkpoint codec for the whole cluster: roster, stores, placement,
//! replica index.
//!
//! The snapshot serializes four things and *derives* everything else on
//! restore:
//!
//! - the replication factor and the placement index's dense-grid
//!   registrations (geometry is re-derived by re-running
//!   `register_dense`);
//! - every node verbatim — lifecycle state, chunk/replica descriptors,
//!   and *which* keys carry payloads, but not the payload cells
//!   themselves (the catalog section of a checkpoint owns chunk bytes;
//!   restore re-wires shared handles through a `payload_of` lookup so
//!   node stores and catalog alias one `Arc<Chunk>` again);
//! - the placement index entries, separately from the node stores.
//!   They are not redundant: after a crash, an orphaned chunk keeps a
//!   placement entry naming the wreck while every node store copy is
//!   gone, so placement ⊋ union-of-node-chunks;
//! - the replica-holder index verbatim, holder order preserved (it is
//!   route order, consumed by failover promotion).
//!
//! `BalanceStats` and the retired-slot counter are recomputed from the
//! restored nodes, and the serialized per-node byte ledgers plus
//! [`Cluster::verify_replica_books`] act as corruption tripwires: any
//! drift between stored and recomputed books surfaces as a typed
//! [`DurabilityError::Mismatch`], never a silently wrong cluster.

use crate::cluster::{BalanceStats, Cluster};
use crate::cost::CostModel;
use crate::node::{Node, NodeId, NodeState};
use crate::placement::PlacementIndex;
use array_model::{ArrayId, Chunk, ChunkKey};
use durability::{ByteReader, ByteWriter, CodecError, DurabilityError};
use std::collections::BTreeMap;
use std::sync::Arc;

fn codec(context: &'static str, source: CodecError) -> DurabilityError {
    DurabilityError::Codec { context: context.to_string(), source }
}

impl Cluster {
    /// Serialize the cluster for a checkpoint. Payload cells are *not*
    /// written — see the module doc; pair with [`Cluster::restore_from`].
    pub fn snapshot_into(&self, w: &mut ByteWriter) {
        w.put_usize(self.replication);
        let dense = self.placement.dense_registrations();
        w.put_usize(dense.len());
        for (array, extents) in &dense {
            array.encode_into(w);
            w.put_usize(extents.len());
            for &e in extents {
                w.put_i64(e);
            }
        }
        w.put_usize(self.nodes.len());
        for node in &self.nodes {
            node.snapshot_into(w);
        }
        let entries = self.placement.collect_sorted();
        w.put_usize(entries.len());
        for (key, node) in &entries {
            key.encode_into(w);
            w.put_u32(node.0);
        }
        w.put_usize(self.replicas.len());
        for (key, holders) in &self.replicas {
            key.encode_into(w);
            w.put_usize(holders.len());
            for h in holders {
                w.put_u32(h.0);
            }
        }
    }

    /// Rebuild a cluster from [`Cluster::snapshot_into`]. `payload_of`
    /// resolves chunk payloads from the already-restored catalog so node
    /// stores re-alias the catalog's `Arc<Chunk>` handles. The cost model
    /// is config-derived and supplied by the caller, not serialized.
    ///
    /// Does not demand the reader be empty afterwards: the cluster
    /// section is embedded inside a larger checkpoint record.
    pub fn restore_from(
        r: &mut ByteReader<'_>,
        cost: CostModel,
        payload_of: &dyn Fn(&ChunkKey) -> Option<Arc<Chunk>>,
    ) -> Result<Cluster, DurabilityError> {
        let replication =
            r.usize("replication factor").map_err(|e| codec("replication factor", e))?;
        let mut placement = PlacementIndex::new();
        let n = r.usize("dense grid count").map_err(|e| codec("dense grid count", e))?;
        for _ in 0..n {
            let array = ArrayId::decode_from(r).map_err(|e| codec("dense grid array", e))?;
            let ndims = r.usize("dense grid ndims").map_err(|e| codec("dense grid ndims", e))?;
            if ndims == 0 || ndims > array_model::MAX_DIMS {
                return Err(codec(
                    "dense grid ndims",
                    CodecError::Invalid {
                        context: "dense grid ndims",
                        detail: format!("{ndims} outside 1..={}", array_model::MAX_DIMS),
                    },
                ));
            }
            let mut extents = Vec::with_capacity(ndims);
            for _ in 0..ndims {
                extents
                    .push(r.i64("dense grid extent").map_err(|e| codec("dense grid extent", e))?);
            }
            if extents.iter().any(|&e| e < 1) {
                return Err(codec(
                    "dense grid extent",
                    CodecError::Invalid {
                        context: "dense grid extent",
                        detail: format!("non-positive extent in {extents:?}"),
                    },
                ));
            }
            if !placement.register_dense(array, &extents) {
                return Err(DurabilityError::Mismatch {
                    what: format!("dense registration of array {}", array.0),
                    expected: "accepted (it was registered in the snapshotted cluster)".to_string(),
                    actual: "rejected".to_string(),
                });
            }
        }
        let n = r.usize("node count").map_err(|e| codec("node count", e))?;
        let mut nodes = Vec::with_capacity(n.min(1 << 16));
        let mut balance = BalanceStats::default();
        let mut retired = 0usize;
        for i in 0..n {
            let node = Node::restore_from(r, payload_of)?;
            if node.id != NodeId(i as u32) {
                return Err(DurabilityError::Mismatch {
                    what: "node roster order".to_string(),
                    expected: format!("node {i} in slot {i} (ids are join-order indices)"),
                    actual: format!("{}", node.id),
                });
            }
            balance.on_change(0, node.used_bytes());
            if node.state() == NodeState::Retired {
                retired += 1;
            }
            nodes.push(node);
        }
        let entries = r.usize("placement count").map_err(|e| codec("placement count", e))?;
        for _ in 0..entries {
            let key = ChunkKey::decode_from(r).map_err(|e| codec("placement key", e))?;
            let node = NodeId(r.u32("placement node").map_err(|e| codec("placement node", e))?);
            if node.0 as usize >= nodes.len() {
                return Err(DurabilityError::Mismatch {
                    what: format!("placement of {key}"),
                    expected: format!("a node id below {}", nodes.len()),
                    actual: format!("{node}"),
                });
            }
            if placement.insert(key, node).is_some() {
                return Err(DurabilityError::Mismatch {
                    what: format!("placement of {key}"),
                    expected: "a single entry per key".to_string(),
                    actual: "duplicate entry in snapshot".to_string(),
                });
            }
        }
        let n = r.usize("replica index count").map_err(|e| codec("replica index count", e))?;
        let mut replicas = BTreeMap::new();
        for _ in 0..n {
            let key = ChunkKey::decode_from(r).map_err(|e| codec("replica key", e))?;
            let holders =
                r.usize("replica holder count").map_err(|e| codec("replica holder count", e))?;
            let mut v = Vec::with_capacity(holders.min(1 << 8));
            for _ in 0..holders {
                let h = NodeId(r.u32("replica holder").map_err(|e| codec("replica holder", e))?);
                if h.0 as usize >= nodes.len() {
                    return Err(DurabilityError::Mismatch {
                        what: format!("replica holder of {key}"),
                        expected: format!("a node id below {}", nodes.len()),
                        actual: format!("{h}"),
                    });
                }
                v.push(h);
            }
            replicas.insert(key, v);
        }
        let cluster = Cluster { nodes, placement, cost, balance, replication, replicas, retired };
        cluster.verify_replica_books().map_err(|e| DurabilityError::Mismatch {
            what: "replica books".to_string(),
            expected: "replica index in lockstep with node replica stores".to_string(),
            actual: e.to_string(),
        })?;
        Ok(cluster)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use array_model::{ArraySchema, ChunkCoords};

    fn chunk_for(key: &ChunkKey) -> Arc<Chunk> {
        let schema = ArraySchema::parse("A<v:double>[x=0:*,4, y=0:*,4]").unwrap();
        let mut c = Chunk::new(&schema, key.coords);
        let cell = vec![key.coords.as_slice()[0] * 4, key.coords.as_slice()[1] * 4];
        c.push_cell(&schema, cell, vec![array_model::ScalarValue::Double(1.5)]).unwrap();
        Arc::new(c)
    }

    /// A cluster with history: replication, payloads, a crash (orphans +
    /// promoted replicas), and a retirement. The round-trip must survive
    /// every lifecycle state at once.
    fn build_eventful_cluster() -> (Cluster, BTreeMap<ChunkKey, Arc<Chunk>>) {
        let mut cluster = Cluster::with_replication(4, u64::MAX, CostModel::default(), 2).unwrap();
        cluster.register_array(ArrayId(0), &[8, 8]);
        let mut catalog = BTreeMap::new();
        for x in 0..8 {
            for y in 0..8 {
                let key = ChunkKey::new(ArrayId(0), ChunkCoords::new([x, y]));
                let payload = chunk_for(&key);
                let d = payload.descriptor(ArrayId(0));
                let node = NodeId(((x * 8 + y) % 4) as u32);
                cluster.place(d, node).unwrap();
                cluster.attach_payload(key, Arc::clone(&payload)).unwrap();
                catalog.insert(key, payload);
            }
        }
        cluster.crash_node(NodeId(3)).unwrap();
        cluster.add_nodes(1, u64::MAX);
        let plan = cluster.plan_drain(NodeId(2)).unwrap();
        cluster.apply_rebalance(&plan).unwrap();
        cluster.retire_node(NodeId(2)).unwrap();
        (cluster, catalog)
    }

    #[test]
    fn eventful_cluster_round_trips_bit_identically() {
        let (cluster, catalog) = build_eventful_cluster();
        let mut w = ByteWriter::new();
        cluster.snapshot_into(&mut w);
        let bytes = w.into_bytes();

        let lookup = |key: &ChunkKey| catalog.get(key).cloned();
        let mut r = ByteReader::new(&bytes);
        let restored =
            Cluster::restore_from(&mut r, CostModel::default(), &lookup).expect("restore");
        assert!(r.is_empty(), "cluster snapshot fully consumed");

        // Bit-identical re-snapshot is the strongest equality we can ask
        // for without deriving PartialEq on the world.
        let mut w2 = ByteWriter::new();
        restored.snapshot_into(&mut w2);
        assert_eq!(bytes, w2.into_bytes(), "snapshot not idempotent");

        // Spot-check the derived state too.
        assert_eq!(cluster.loads(), restored.loads());
        assert_eq!(cluster.chunk_counts(), restored.chunk_counts());
        assert_eq!(cluster.total_used(), restored.total_used());
        assert_eq!(
            cluster.balance_rsd().to_bits(),
            restored.balance_rsd().to_bits(),
            "balance census must be bit-identical"
        );
        assert_eq!(cluster.replica_census(), restored.replica_census());
        assert_eq!(
            cluster.placements().collect::<Vec<_>>(),
            restored.placements().collect::<Vec<_>>()
        );
        // Payload handles alias the catalog (zero-copy restore).
        for (key, chunk) in &catalog {
            if let Some(p) = restored.payload_shared(key) {
                assert!(Arc::ptr_eq(p, chunk), "payload of {key} must alias the catalog");
            }
        }
    }

    #[test]
    fn truncated_and_tampered_snapshots_fail_typed() {
        let (cluster, catalog) = build_eventful_cluster();
        let mut w = ByteWriter::new();
        cluster.snapshot_into(&mut w);
        let bytes = w.into_bytes();
        let lookup = |key: &ChunkKey| catalog.get(key).cloned();

        // Every strict prefix is rejected (or, if it happens to parse,
        // the books cross-check trips) — never a panic.
        for cut in (0..bytes.len()).step_by(7) {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(
                Cluster::restore_from(&mut r, CostModel::default(), &lookup).is_err(),
                "truncation at {cut} accepted"
            );
        }

        // A missing payload is a typed mismatch, not a silent hole.
        let no_payloads = |_: &ChunkKey| None;
        let mut r = ByteReader::new(&bytes);
        let err = Cluster::restore_from(&mut r, CostModel::default(), &no_payloads).unwrap_err();
        assert!(matches!(err, DurabilityError::Mismatch { .. }), "got {err}");
    }
}
