//! Model-based property tests: the dense placement index must behave
//! exactly like the `BTreeMap<ChunkKey, NodeId>` it replaced, under
//! arbitrary interleavings of placements, rebalances, and scale-outs —
//! with and without dense registration, including coordinates that spill
//! past the registered extents.

use array_model::{ArrayId, ChunkCoords, ChunkDescriptor, ChunkKey};
use cluster_sim::{relative_std_dev, Cluster, CostModel, NodeId, RebalancePlan};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// One scripted operation against both implementations.
#[derive(Debug, Clone)]
enum Op {
    /// Place chunk (array, coords, bytes) on node (index modulo roster).
    Place(u32, [i64; 3], u64, u32),
    /// Move the i-th resident chunk (modulo count) to node (modulo roster).
    Move(usize, u32),
    /// Add one node.
    Grow,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..3, (0i64..40, 0i64..8, 0i64..8), 1u64..1_000_000, 0u32..16)
            .prop_map(|(array, (t, x, y), bytes, node)| Op::Place(array, [t, x, y], bytes, node)),
        (0usize..512, 0u32..16).prop_map(|(i, node)| Op::Move(i, node)),
        Just(Op::Grow),
    ]
}

/// Reference model: the old implementation's data structure.
#[derive(Default)]
struct Model {
    placement: BTreeMap<ChunkKey, NodeId>,
    loads: BTreeMap<NodeId, u64>,
    sizes: BTreeMap<ChunkKey, u64>,
}

fn run_script(ops: &[Op], register: bool) {
    let mut cluster = Cluster::new(2, u64::MAX, CostModel::default()).unwrap();
    if register {
        // Deliberately smaller than the op domain on the time axis, so
        // placements regularly spill past the dense extents.
        for a in 0..3 {
            cluster.register_array(ArrayId(a), &[16, 8, 8]);
        }
    }
    let mut model = Model::default();
    for id in cluster.node_ids() {
        model.loads.insert(id, 0);
    }

    for op in ops {
        match *op {
            Op::Place(array, coords, bytes, node) => {
                let key = ChunkKey::new(ArrayId(array), ChunkCoords::new(coords));
                let node = NodeId(node % cluster.node_count() as u32);
                if model.placement.contains_key(&key) {
                    // Duplicate: the cluster must reject it identically.
                    assert!(cluster.place(ChunkDescriptor::new(key, bytes, 1), node).is_err());
                    continue;
                }
                cluster.place(ChunkDescriptor::new(key, bytes, 1), node).unwrap();
                model.placement.insert(key, node);
                model.sizes.insert(key, bytes);
                *model.loads.entry(node).or_insert(0) += bytes;
            }
            Op::Move(i, to) => {
                if model.placement.is_empty() {
                    continue;
                }
                let (key, from) = model
                    .placement
                    .iter()
                    .nth(i % model.placement.len())
                    .map(|(k, n)| (*k, *n))
                    .unwrap();
                let to = NodeId(to % cluster.node_count() as u32);
                if to == from {
                    continue;
                }
                let bytes = model.sizes[&key];
                let mut plan = RebalancePlan::empty();
                plan.push(key, from, to, bytes);
                cluster.apply_rebalance(&plan).unwrap();
                model.placement.insert(key, to);
                *model.loads.get_mut(&from).unwrap() -= bytes;
                *model.loads.entry(to).or_insert(0) += bytes;
            }
            Op::Grow => {
                if cluster.node_count() < 16 {
                    for id in cluster.add_nodes(1, u64::MAX) {
                        model.loads.insert(id, 0);
                    }
                }
            }
        }

        // Invariants after every step.
        assert_eq!(cluster.total_chunks(), model.placement.len());
        let model_loads: Vec<u64> = model.loads.values().copied().collect();
        assert_eq!(cluster.loads(), model_loads, "load ledgers diverged");
        let expected_rsd = relative_std_dev(&model_loads);
        assert!(
            (cluster.balance_rsd() - expected_rsd).abs() < 1e-12,
            "incremental census diverged: {} vs {}",
            cluster.balance_rsd(),
            expected_rsd
        );
    }

    // Terminal state: every lookup and the full sorted iteration agree.
    for (key, node) in &model.placement {
        assert_eq!(cluster.locate(key), Some(*node), "locate diverged at {key}");
    }
    let snapshot: Vec<(ChunkKey, NodeId)> = cluster.placements().collect();
    let reference: Vec<(ChunkKey, NodeId)> =
        model.placement.iter().map(|(k, n)| (*k, *n)).collect();
    assert_eq!(snapshot, reference, "placements() order or content diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Dense-registered index ≡ BTreeMap reference model.
    #[test]
    fn dense_index_matches_btreemap_model(ops in proptest::collection::vec(arb_op(), 1..120)) {
        run_script(&ops, true);
    }

    /// Unregistered (hash fallback) index ≡ BTreeMap reference model.
    #[test]
    fn sparse_index_matches_btreemap_model(ops in proptest::collection::vec(arb_op(), 1..120)) {
        run_script(&ops, false);
    }
}
