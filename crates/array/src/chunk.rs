//! Chunks: the unit of storage, I/O, and placement.
//!
//! A [`Chunk`] holds the non-empty cells of one n-dimensional subarray,
//! vertically partitioned into one [`AttributeColumn`] per attribute.
//! A [`ChunkDescriptor`] is the metadata view — coordinates, byte size,
//! cell count — that partitioners and the cluster simulator reason about.
//! At paper scale (hundreds of GB) only descriptors are materialized;
//! tests and examples materialize full chunks.

use crate::cells::{CellBuffer, RowGroups, RowSel};
use crate::coords::ChunkCoords;
use crate::error::{ArrayError, Result};
use crate::schema::ArraySchema;
use crate::value::{AttributeColumn, DictColumn, ScalarValue, StringEncoding};
use crate::zone::ZoneMap;
use serde::{Deserialize, Serialize};

/// Identifier for an array within a catalog/cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ArrayId(pub u32);

impl std::fmt::Display for ArrayId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "array#{}", self.0)
    }
}

/// Globally unique chunk key: which array, which chunk position.
///
/// `Copy` since the coordinate vector is stored inline: keys move through
/// the placement hot path by value, with no heap traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ChunkKey {
    /// Owning array.
    pub array: ArrayId,
    /// Chunk position within the array.
    pub coords: ChunkCoords,
}

impl ChunkKey {
    /// Construct a key.
    pub fn new(array: ArrayId, coords: ChunkCoords) -> Self {
        ChunkKey { array, coords }
    }
}

impl std::fmt::Display for ChunkKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@{}", self.array, self.coords)
    }
}

/// Metadata describing one stored chunk — everything data placement needs.
///
/// Physical chunk size is variable: it reflects the number of non-empty
/// cells actually stored, not the declared chunk volume (§2). Skew shows
/// up as high variance in `bytes` across descriptors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkDescriptor {
    /// Chunk identity.
    pub key: ChunkKey,
    /// Total stored bytes across all attribute columns.
    pub bytes: u64,
    /// Number of non-empty cells.
    pub cells: u64,
}

impl ChunkDescriptor {
    /// Construct a descriptor.
    pub fn new(key: ChunkKey, bytes: u64, cells: u64) -> Self {
        ChunkDescriptor { key, bytes, cells }
    }
}

/// A materialized chunk: sparse cells stored as a **flat** coordinate
/// buffer (structure-of-arrays, stride = the array's dimensionality) plus
/// one column per attribute, all in insertion order.
///
/// `bytes` and `cells` are running counters maintained on every append,
/// so [`Chunk::byte_size`], [`Chunk::cell_count`], and
/// [`Chunk::descriptor`] are O(1) — the materialized ingest path derives
/// a descriptor from every freshly built chunk, and used to pay a full
/// rescan of the coordinate list per derivation.
///
/// Retractions are **tombstones**: [`Chunk::retract_cell`] marks the
/// row dead in a bitmap and decrements `bytes`/`cells` by the row's
/// exact cost, without moving any storage. [`Chunk::iter_cells`] — the
/// single iteration choke point every query operator reads through —
/// skips tombstoned rows, so deleted cells vanish from answers
/// immediately. A dictionary entry whose last referencing row was
/// tombstoned keeps its bytes until [`Chunk::compact`] rebuilds the
/// columns from the surviving rows (deferred compaction).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Chunk {
    /// Chunk position within its array.
    pub coords: ChunkCoords,
    /// Coordinate stride: the owning schema's dimensionality.
    ndims: u8,
    /// Cell coordinates, flattened row-major: cell `i` occupies
    /// `cell_coords[i*ndims .. (i+1)*ndims]`.
    cell_coords: Vec<i64>,
    /// One column per schema attribute.
    columns: Vec<AttributeColumn>,
    /// Running stored-byte total (coordinates + columns) of **live**
    /// rows, plus any not-yet-compacted dictionary entries.
    bytes: u64,
    /// Running **live** cell count (physical rows minus tombstones).
    cells: u64,
    /// Tombstone bitmap over physical rows: bit `i` set means row `i`
    /// was retracted. May be shorter than the row count — absent bits
    /// are live. Empty on every freshly built or compacted chunk.
    tombstones: Vec<u64>,
    /// The string encoding this chunk was built with. [`Chunk::compact`]
    /// rebuilds columns under it, so a column that spilled to plain
    /// storage re-encodes when the surviving cardinality fits the cap —
    /// a compacted chunk is structurally identical to one built from
    /// only the surviving cells.
    encoding: StringEncoding,
    /// Pruning metadata: live-cell bounding box + per-attribute stats.
    /// Maintained on every mutation (see [`crate::zone`] for the
    /// conservatism/path-independence invariants); participates in the
    /// derived `PartialEq`, so the structural-equality differentials
    /// also pin zone-map maintenance.
    zone: ZoneMap,
}

impl Chunk {
    /// An empty chunk at `coords` shaped by `schema`'s attributes, under
    /// the default string encoding (dictionary, [`crate::DEFAULT_DICT_CAP`]).
    pub fn new(schema: &ArraySchema, coords: ChunkCoords) -> Self {
        Self::with_encoding(schema, coords, StringEncoding::default())
    }

    /// An empty chunk at `coords`; `encoding` selects the physical
    /// representation of its string columns.
    pub fn with_encoding(
        schema: &ArraySchema,
        coords: ChunkCoords,
        encoding: StringEncoding,
    ) -> Self {
        let columns: Vec<AttributeColumn> = schema
            .attributes
            .iter()
            .map(|a| AttributeColumn::with_encoding(a.ty, encoding))
            .collect();
        let zone = ZoneMap::empty_for(schema.ndims(), &columns);
        Chunk {
            coords,
            ndims: schema.ndims() as u8,
            cell_coords: Vec::new(),
            columns,
            bytes: 0,
            cells: 0,
            tombstones: Vec::new(),
            encoding,
            zone,
        }
    }

    /// Append one cell. The caller is responsible for having routed the
    /// cell to the right chunk (see [`crate::coords::chunk_of`]).
    pub fn push_cell(
        &mut self,
        schema: &ArraySchema,
        cell: Vec<i64>,
        values: Vec<ScalarValue>,
    ) -> Result<()> {
        if cell.len() != schema.ndims() {
            return Err(ArrayError::Arity { expected: schema.ndims(), got: cell.len() });
        }
        if values.len() != schema.attributes.len() {
            return Err(ArrayError::Arity { expected: schema.attributes.len(), got: values.len() });
        }
        // Validate types before mutating any column, so a failed push
        // leaves the chunk consistent.
        for (attr, value) in schema.attributes.iter().zip(&values) {
            if attr.ty != value.value_type() {
                return Err(ArrayError::TypeMismatch {
                    attribute: attr.name.clone(),
                    expected: attr.ty.name(),
                    got: value.value_type().name(),
                });
            }
        }
        self.zone.observe_cell(&cell, &values);
        for (col, value) in self.columns.iter_mut().zip(values) {
            // The delta accounts dictionary bytes once per distinct
            // string plus 4 B per code (and any spill conversion);
            // plain values cost their full payload.
            let delta = col.push(value).expect("types were validated above");
            self.bytes = self.bytes.checked_add_signed(delta).expect("byte counter underflow");
        }
        self.bytes += (cell.len() * 8) as u64;
        self.cell_coords.extend_from_slice(&cell);
        self.cells += 1;
        // After the values land: the push may have grown or spilled a
        // dictionary, which the zone's string summaries track.
        self.zone.sync_strings(&self.columns);
        Ok(())
    }

    /// Bulk-append the cells of `src` at the given row indices, in order.
    ///
    /// This is the batched counterpart of [`Chunk::push_cell`]: schema
    /// arity and attribute types are validated **once per call** (the
    /// buffer's columns are typed, so one column-type comparison covers
    /// every row), and the copies run column-at-a-time with the type
    /// dispatch hoisted out of the row loop. On any validation error
    /// nothing is appended. The caller is responsible for having routed
    /// every listed row to this chunk.
    ///
    /// Convenience API: it scatters into a temporary chunk and appends
    /// it, paying one extra copy so the copy/byte-accounting code lives
    /// only in the scatter. The hot paths ([`crate::Array`]'s batch
    /// inserts) scatter straight into their destination chunks.
    ///
    /// # Panics
    ///
    /// If a row index is out of range for the buffer — an index error,
    /// as with slice indexing, not a validation error; checked up front
    /// so the chunk is untouched.
    pub fn push_cells(
        &mut self,
        schema: &ArraySchema,
        src: &CellBuffer,
        rows: &[u32],
    ) -> Result<()> {
        src.matches(schema)?;
        if rows.is_empty() {
            return Ok(());
        }
        assert!(
            rows.iter().all(|&r| (r as usize) < src.len()),
            "row index out of range for a {}-row batch",
            src.len()
        );
        // One-group scatter, then a wholesale append — the same copy and
        // byte-accounting code the batch pipeline runs, so the two paths
        // cannot drift. The temporary takes this chunk's own string
        // encoding; `append` reconciles representations either way.
        let groups = RowGroups {
            coords: vec![self.coords],
            counts: vec![rows.len() as u32],
            group_of: vec![0; rows.len()],
        };
        let mut built = Chunk::scatter_cells(
            schema,
            ColumnSet::Shared(src.columns()),
            src.coords_flat(),
            rows.iter().copied(),
            &groups,
            self.encoding,
        );
        self.append(built.pop().expect("exactly one group"));
        Ok(())
    }

    /// Build one chunk per group of `groups`, scattering the listed rows
    /// of `src` into them in a **column-major sweep**: for the coordinate
    /// buffer and then for every attribute, one sequential pass over the
    /// source rows appends each value to its group's chunk. The source
    /// reads stream (hardware-prefetch friendly) and the append targets
    /// are one growing tail per group — a working set that stays
    /// cache-resident — instead of the gather pattern's random reads
    /// across the whole batch per chunk. Capacities come from the group
    /// counts, so every buffer is sized exactly once.
    ///
    /// `src` distinguishes a borrowed batch (values cloned) from a
    /// consumed one (variable-width values **moved** out — the hot
    /// single-threaded ingest path, where a row's strings are allocated
    /// once by the generator and never re-allocated downstream).
    /// `encoding` is the **storage-side** string representation the built
    /// chunks should carry; a dictionary-encoded batch scatters into
    /// dictionary chunks by remapping `u32` codes (no per-row string
    /// traffic at all), spilling any chunk whose column exceeds the cap.
    ///
    /// The caller has already validated the batch against `schema`
    /// ([`crate::CellBuffer::matches`]); row order within each group is
    /// the listed order, identical to per-cell insertion.
    pub(crate) fn scatter_cells(
        schema: &ArraySchema,
        src: ColumnSet<'_>,
        flat: &[i64],
        rows: impl RowSel,
        groups: &RowGroups,
        encoding: StringEncoding,
    ) -> Vec<Chunk> {
        let nd = schema.ndims();
        let mut out: Vec<Chunk> = groups
            .coords
            .iter()
            .zip(&groups.counts)
            .map(|(&coords, &n)| {
                let mut chunk = Chunk::with_encoding(schema, coords, encoding);
                let n = n as usize;
                chunk.cell_coords.reserve(n * nd);
                for col in &mut chunk.columns {
                    col.reserve(n);
                }
                // Cell count and coordinate bytes are known up front; the
                // column sweeps below add each column's bytes.
                chunk.cells = n as u64;
                chunk.bytes = (n * nd * 8) as u64;
                chunk
            })
            .collect();
        // Specialize the sweep on the (tiny) dimensionality so the inner
        // copy unrolls to straight-line pushes instead of a per-row
        // variable-length memcpy.
        fn sweep<const ND: usize>(
            out: &mut [Chunk],
            flat: &[i64],
            rows: impl RowSel,
            group_of: &[u32],
        ) {
            for (i, r) in rows.enumerate() {
                let g = group_of[i] as usize;
                let s: &[i64; ND] = flat[r as usize * ND..r as usize * ND + ND]
                    .try_into()
                    .expect("stride-exact slice");
                out[g].cell_coords.extend_from_slice(s);
            }
        }
        match nd {
            1 => sweep::<1>(&mut out, flat, rows.clone(), &groups.group_of),
            2 => sweep::<2>(&mut out, flat, rows.clone(), &groups.group_of),
            3 => sweep::<3>(&mut out, flat, rows.clone(), &groups.group_of),
            4 => sweep::<4>(&mut out, flat, rows.clone(), &groups.group_of),
            _ => {
                for (i, r) in rows.clone().enumerate() {
                    let g = groups.group_of[i] as usize;
                    let r = r as usize;
                    out[g].cell_coords.extend_from_slice(&flat[r * nd..r * nd + nd]);
                }
            }
        }
        match src {
            ColumnSet::Shared(cols) => {
                for (a, src_col) in cols.iter().enumerate() {
                    scatter_column(&mut out, a, src_col, rows.clone(), groups);
                }
            }
            ColumnSet::Taken(cols) => {
                for (a, src_col) in cols.iter_mut().enumerate() {
                    scatter_column_taking(&mut out, a, src_col, rows.clone(), groups);
                }
            }
        }
        // Freshly scattered chunks are tombstone-free, so the canonical
        // fold over the built buffers yields a tight zone map.
        for chunk in &mut out {
            chunk.zone = ZoneMap::compute(nd, &chunk.cell_coords, &chunk.columns);
        }
        out
    }

    /// Move every cell of `other` onto the end of this chunk, preserving
    /// `other`'s insertion order. Both chunks must have been built
    /// against the same schema (the callers guarantee it; column arity
    /// and types are debug-asserted). Byte accounting folds the
    /// per-column deltas rather than `other.bytes`: merging two
    /// dictionary columns counts shared dictionary entries once, so the
    /// merged size can be smaller than the parts' sum.
    pub(crate) fn append(&mut self, other: Chunk) {
        debug_assert_eq!(self.ndims, other.ndims);
        debug_assert_eq!(self.columns.len(), other.columns.len());
        // Freshly built chunks never carry tombstones; a tombstoned
        // destination is fine (its bitmap covers a prefix of the rows,
        // and the appended rows default to live).
        debug_assert!(
            other.tombstones.iter().all(|w| *w == 0),
            "append source must be tombstone-free"
        );
        self.cell_coords.extend_from_slice(&other.cell_coords);
        let mut delta = other.cell_coords.len() as i64 * 8;
        for (dst, src) in self.columns.iter_mut().zip(other.columns) {
            delta += dst.append(src);
        }
        self.bytes = self.bytes.checked_add_signed(delta).expect("byte counter underflow");
        self.cells += other.cells;
        // Merging canonical zone maps equals the canonical map of the
        // union, so grown chunks stay `==` to batch-built ones. String
        // summaries re-read the merged columns (appends can spill).
        self.zone.merge(&other.zone);
        self.zone.sync_strings(&self.columns);
    }

    /// Number of stored (non-empty) cells. O(1).
    pub fn cell_count(&self) -> u64 {
        self.cells
    }

    /// True when the chunk stores no cells.
    pub fn is_empty(&self) -> bool {
        self.cells == 0
    }

    /// Stored bytes across all columns plus the coordinate list. O(1) —
    /// maintained incrementally on every append.
    pub fn byte_size(&self) -> u64 {
        self.bytes
    }

    /// The coordinates of cell `idx`.
    pub fn cell(&self, idx: usize) -> Option<&[i64]> {
        let nd = self.ndims as usize;
        self.cell_coords.get(idx * nd..(idx + 1) * nd)
    }

    /// The column for attribute index `attr`.
    pub fn column(&self, attr: usize) -> Option<&AttributeColumn> {
        self.columns.get(attr)
    }

    /// Iterate `(cell_coords, row_index)` pairs over the **live** rows.
    /// Tombstoned rows are skipped here — this is the single iteration
    /// choke point, so every query operator is retraction-blind.
    pub fn iter_cells(&self) -> impl Iterator<Item = (&[i64], usize)> {
        self.cell_coords
            .chunks_exact((self.ndims as usize).max(1))
            .enumerate()
            .filter(|(i, _)| !self.is_tombstoned(*i))
            .map(|(i, c)| (c, i))
    }

    /// Number of physical rows, tombstoned or not. Row indices returned
    /// by [`Chunk::iter_cells`] and accepted by [`Chunk::cell`] /
    /// [`AttributeColumn::get`] are physical.
    pub fn physical_cell_count(&self) -> usize {
        if self.ndims == 0 {
            return 0;
        }
        self.cell_coords.len() / self.ndims as usize
    }

    /// Number of tombstoned (retracted, not yet compacted) rows.
    pub fn tombstone_count(&self) -> u64 {
        self.physical_cell_count() as u64 - self.cells
    }

    /// True when physical row `row` has been retracted.
    pub fn is_tombstoned(&self, row: usize) -> bool {
        self.tombstones.get(row / 64).is_some_and(|w| w & (1u64 << (row % 64)) != 0)
    }

    /// The string encoding this chunk was built with (and that
    /// [`Chunk::compact`] rebuilds under).
    pub fn string_encoding(&self) -> StringEncoding {
        self.encoding
    }

    /// Retract the most recently inserted **live** cell at `cell`.
    ///
    /// The row is tombstoned in place: `cell_count` drops by one and
    /// `byte_size` by the row's exact cost (coordinates plus each
    /// column's per-row bytes — see [`AttributeColumn::row_byte_cost`]).
    /// Returns the bytes freed, or `None` when no live cell matches
    /// (already retracted, or never inserted). Storage is reclaimed by
    /// [`Chunk::compact`].
    pub fn retract_cell(&mut self, cell: &[i64]) -> Option<u64> {
        self.retract_cell_indexed(cell).map(|(_, freed)| freed)
    }

    /// [`Chunk::retract_cell`], additionally reporting **which** physical
    /// row was tombstoned. This is the delta-capture choke point: the
    /// row's attribute values stay readable (storage is only reclaimed by
    /// [`Chunk::compact`]), so callers building retraction deltas read
    /// them via [`Chunk::row_values`] right after the tombstone lands.
    pub fn retract_cell_indexed(&mut self, cell: &[i64]) -> Option<(usize, u64)> {
        let nd = (self.ndims as usize).max(1);
        if cell.len() != nd {
            return None;
        }
        let row = self
            .cell_coords
            .chunks_exact(nd)
            .enumerate()
            .rev()
            .find(|(i, c)| *c == cell && !self.is_tombstoned(*i))?
            .0;
        let freed = self.tombstone_row(row);
        Some((row, freed))
    }

    /// Every attribute value of physical row `row`, tombstoned or not —
    /// values survive until [`Chunk::compact`] reclaims storage. `None`
    /// when `row` is past the physical row count.
    pub fn row_values(&self, row: usize) -> Option<Vec<ScalarValue>> {
        if row >= self.physical_cell_count() {
            return None;
        }
        Some(
            self.columns
                .iter()
                .map(|c| c.get(row).expect("columns cover every physical row"))
                .collect(),
        )
    }

    /// Tombstone physical row `row`, decrementing the running counters
    /// by the row's exact byte cost. Returns the bytes freed.
    fn tombstone_row(&mut self, row: usize) -> u64 {
        debug_assert!(!self.is_tombstoned(row), "row is already tombstoned");
        let word = row / 64;
        if self.tombstones.len() <= word {
            self.tombstones.resize(word + 1, 0);
        }
        self.tombstones[word] |= 1u64 << (row % 64);
        let mut freed = (self.ndims as usize * 8) as u64;
        for col in &self.columns {
            freed += col.row_byte_cost(row).expect("columns cover every row");
        }
        self.bytes = self.bytes.checked_sub(freed).expect("byte counter underflow on retraction");
        self.cells = self.cells.checked_sub(1).expect("cell counter underflow on retraction");
        freed
    }

    /// Bytes held by dictionary entries that no **live** row references:
    /// the storage retractions strand inside dict-encoded string columns.
    /// Tombstoning a row frees only its 4-byte code — the interned string
    /// it pointed at stays resident until [`Chunk::compact`] rebuilds the
    /// column — so under churny workloads these dangling entries grow
    /// without ever moving `tombstone_count` relative to fresh inserts.
    /// The byte accounting matches the build-side dictionary charge
    /// (`len + 4` per entry). O(physical rows × dict columns); zero for
    /// plain-encoded chunks.
    pub fn dangling_dict_bytes(&self) -> u64 {
        let mut total = 0u64;
        for col in &self.columns {
            let Some(dc) = col.as_dict() else { continue };
            let mut live = vec![false; dc.dict().len()];
            for (_, row) in self.iter_cells() {
                if let Some(&code) = dc.codes().get(row) {
                    live[code as usize] = true;
                }
            }
            for (code, s) in dc.dict().strings().iter().enumerate() {
                if !live[code] {
                    total += s.len() as u64 + 4;
                }
            }
        }
        total
    }

    /// Reclaim tombstoned rows: rebuild the coordinate buffer and every
    /// column from the surviving rows, under the chunk's original string
    /// encoding — so dictionary entries with no remaining references are
    /// dropped, and a column that spilled to plain storage re-encodes
    /// when the surviving cardinality fits the cap again. The result is
    /// structurally identical to a chunk built from only the surviving
    /// cells in their original order.
    ///
    /// Returns the byte-size delta (positive = bytes reclaimed; a spill
    /// reversal can make the rebuilt column marginally larger). No-op on
    /// a tombstone-free chunk.
    pub fn compact(&mut self) -> i64 {
        if self.tombstones.iter().all(|w| *w == 0) {
            self.tombstones.clear();
            return 0;
        }
        let nd = (self.ndims as usize).max(1);
        let before = self.bytes;
        let mut coords = Vec::with_capacity(self.cells as usize * nd);
        let mut columns: Vec<AttributeColumn> = self
            .columns
            .iter()
            .map(|c| AttributeColumn::with_encoding(c.column_type(), self.encoding))
            .collect();
        let mut bytes = 0u64;
        for (cell, row) in self.iter_cells() {
            coords.extend_from_slice(cell);
            bytes += (nd * 8) as u64;
            for (dst, src) in columns.iter_mut().zip(&self.columns) {
                let delta = dst
                    .push(src.get(row).expect("live rows have values"))
                    .expect("rebuilt columns share the source types");
                bytes = bytes.checked_add_signed(delta).expect("byte counter underflow");
            }
        }
        self.cell_coords = coords;
        self.columns = columns;
        self.tombstones.clear();
        self.bytes = bytes;
        // Retractions left the zone map stale-but-conservative; the
        // rebuild has exactly the surviving rows, so recompute a tight one.
        self.zone = ZoneMap::compute(self.ndims as usize, &self.cell_coords, &self.columns);
        before as i64 - bytes as i64
    }

    /// Metadata descriptor for this chunk. O(1) — no rescan.
    pub fn descriptor(&self, array: ArrayId) -> ChunkDescriptor {
        ChunkDescriptor {
            key: ChunkKey::new(array, self.coords),
            bytes: self.bytes,
            cells: self.cells,
        }
    }

    /// The chunk's pruning metadata (see [`crate::zone`]).
    pub fn zone(&self) -> &ZoneMap {
        &self.zone
    }

    /// Coordinate stride: the owning schema's dimensionality.
    pub fn ndims(&self) -> usize {
        self.ndims as usize
    }

    /// The flat row-major coordinate buffer (stride = [`Chunk::ndims`]),
    /// including tombstoned rows — the vectorized scan kernels read
    /// coordinates column-at-a-time through this and mask out dead rows
    /// via [`Chunk::tombstone_words`].
    pub fn coords_flat(&self) -> &[i64] {
        &self.cell_coords
    }

    /// The raw tombstone bitmap words (bit `i` of word `i/64` set = row
    /// retracted). May cover fewer rows than exist — absent bits are
    /// live.
    pub fn tombstone_words(&self) -> &[u64] {
        &self.tombstones
    }
}

// ---------------------------------------------------------------------
// Durable codecs: a chunk round-trips field-for-field (including the
// tombstone bitmap's trailing zero words and the running byte/cell
// counters), so a decoded chunk is `==` to the one that was encoded —
// not merely logically equivalent.
// ---------------------------------------------------------------------

use durability::{ByteReader, ByteWriter, CodecError};

impl ArrayId {
    /// Serialize the raw id.
    pub fn encode_into(&self, w: &mut ByteWriter) {
        w.put_u32(self.0);
    }

    /// Decode an id written by [`ArrayId::encode_into`].
    pub fn decode_from(r: &mut ByteReader<'_>) -> std::result::Result<Self, CodecError> {
        Ok(ArrayId(r.u32("array id")?))
    }
}

impl ChunkKey {
    /// Serialize array id + chunk coordinates.
    pub fn encode_into(&self, w: &mut ByteWriter) {
        self.array.encode_into(w);
        self.coords.encode_into(w);
    }

    /// Decode a key written by [`ChunkKey::encode_into`].
    pub fn decode_from(r: &mut ByteReader<'_>) -> std::result::Result<Self, CodecError> {
        Ok(ChunkKey { array: ArrayId::decode_from(r)?, coords: ChunkCoords::decode_from(r)? })
    }
}

impl ChunkDescriptor {
    /// Serialize key + byte/cell totals.
    pub fn encode_into(&self, w: &mut ByteWriter) {
        self.key.encode_into(w);
        w.put_u64(self.bytes);
        w.put_u64(self.cells);
    }

    /// Decode a descriptor written by [`ChunkDescriptor::encode_into`].
    pub fn decode_from(r: &mut ByteReader<'_>) -> std::result::Result<Self, CodecError> {
        Ok(ChunkDescriptor {
            key: ChunkKey::decode_from(r)?,
            bytes: r.u64("descriptor bytes")?,
            cells: r.u64("descriptor cells")?,
        })
    }
}

impl Chunk {
    /// Serialize every field verbatim: coordinates, the flat SoA cell
    /// coordinate buffer, each attribute column in its current physical
    /// representation, the running counters, the tombstone bitmap, and
    /// the build encoding.
    pub fn encode_into(&self, w: &mut ByteWriter) {
        self.coords.encode_into(w);
        w.put_u8(self.ndims);
        w.put_usize(self.cell_coords.len());
        for &v in &self.cell_coords {
            w.put_i64(v);
        }
        w.put_usize(self.columns.len());
        for col in &self.columns {
            col.encode_into(w);
        }
        w.put_u64(self.bytes);
        w.put_u64(self.cells);
        w.put_usize(self.tombstones.len());
        for &word in &self.tombstones {
            w.put_u64(word);
        }
        self.encoding.encode_into(w);
        self.zone.encode_into(w);
    }

    /// Decode a chunk written by [`Chunk::encode_into`]. Cross-field
    /// shape invariants (coordinate stride, column row counts) are
    /// re-validated so a damaged payload yields an error, not a chunk
    /// that panics later.
    pub fn decode_from(r: &mut ByteReader<'_>) -> std::result::Result<Self, CodecError> {
        let coords = ChunkCoords::decode_from(r)?;
        let ndims = r.u8("chunk ndims")?;
        let n_coords = r.usize("cell coord count")?;
        let mut cell_coords = Vec::with_capacity(n_coords.min(1 << 20));
        for _ in 0..n_coords {
            cell_coords.push(r.i64("cell coord")?);
        }
        if ndims > 0 && cell_coords.len() % ndims as usize != 0 {
            return Err(CodecError::Invalid {
                context: "cell coord count",
                detail: format!("{} not a multiple of ndims {ndims}", cell_coords.len()),
            });
        }
        let ncols = r.usize("chunk column count")?;
        let mut columns = Vec::with_capacity(ncols.min(256));
        for _ in 0..ncols {
            columns.push(AttributeColumn::decode_from(r)?);
        }
        let rows = if ndims == 0 { 0 } else { cell_coords.len() / ndims as usize };
        if let Some(bad) = columns.iter().find(|c| c.len() != rows) {
            return Err(CodecError::Invalid {
                context: "chunk column",
                detail: format!("column holds {} values, chunk has {rows} rows", bad.len()),
            });
        }
        let bytes = r.u64("chunk bytes")?;
        let cells = r.u64("chunk cells")?;
        let n_words = r.usize("tombstone word count")?;
        let mut tombstones = Vec::with_capacity(n_words.min(1 << 16));
        for _ in 0..n_words {
            tombstones.push(r.u64("tombstone word")?);
        }
        let dead: u64 = tombstones.iter().map(|w| u64::from(w.count_ones())).sum();
        let live = (rows as u64).checked_sub(dead).ok_or_else(|| CodecError::Invalid {
            context: "tombstone bitmap",
            detail: format!("{dead} tombstones exceed {rows} physical rows"),
        })?;
        if live != cells {
            return Err(CodecError::Invalid {
                context: "chunk cells",
                detail: format!("counter says {cells} live cells, bitmap leaves {live}"),
            });
        }
        let encoding = StringEncoding::decode_from(r)?;
        let zone = ZoneMap::decode_from(r)?;
        zone.validate_shape(ndims as usize, &columns)
            .map_err(|detail| CodecError::Invalid { context: "chunk zone map", detail })?;
        Ok(Chunk { coords, ndims, cell_coords, columns, bytes, cells, tombstones, encoding, zone })
    }
}

/// How [`Chunk::scatter_cells`] reads the batch's attribute columns:
/// borrowed (clone each value) or consumed (move variable-width values
/// out, leaving the spent buffer behind).
pub(crate) enum ColumnSet<'a> {
    /// Values are cloned; the batch remains usable.
    Shared(&'a [AttributeColumn]),
    /// Variable-width values are moved out; the batch is spent.
    Taken(&'a mut [AttributeColumn]),
}

/// One column of [`Chunk::scatter_cells`]'s sweep: append `src`'s value
/// at every listed row to its group's chunk column. The type dispatch
/// happens once per column; the inner loops are tight typed scatters.
fn scatter_column(
    chunks: &mut [Chunk],
    attr: usize,
    src: &AttributeColumn,
    rows: impl RowSel,
    groups: &RowGroups,
) {
    /// The fixed-width scatter: collect each group's typed column tail,
    /// sweep the source once, then account `width` bytes per value.
    fn fixed<T: Copy>(mut dsts: Vec<&mut Vec<T>>, src: &[T], rows: impl RowSel, group_of: &[u32]) {
        for (i, r) in rows.enumerate() {
            dsts[group_of[i] as usize].push(src[r as usize]);
        }
    }
    macro_rules! scatter_fixed {
        ($variant:ident, $width:expr, $src:expr) => {{
            let dsts = chunks
                .iter_mut()
                .map(|c| match &mut c.columns[attr] {
                    AttributeColumn::$variant(v) => v,
                    _ => unreachable!("batch was validated against the schema"),
                })
                .collect();
            fixed(dsts, $src, rows.clone(), &groups.group_of);
            for (chunk, &n) in chunks.iter_mut().zip(&groups.counts) {
                chunk.bytes += u64::from(n) * $width;
            }
        }};
    }
    match src {
        AttributeColumn::Int32(s) => scatter_fixed!(Int32, 4, s),
        AttributeColumn::Int64(s) => scatter_fixed!(Int64, 8, s),
        AttributeColumn::Float(s) => scatter_fixed!(Float, 4, s),
        AttributeColumn::Double(s) => scatter_fixed!(Double, 8, s),
        AttributeColumn::Char(s) => scatter_fixed!(Char, 1, s),
        AttributeColumn::Dict(s) => scatter_dict_column(chunks, attr, s, rows, groups),
        AttributeColumn::Str(s) => {
            if matches!(chunks.first().map(|c| &c.columns[attr]), Some(AttributeColumn::Dict(_))) {
                // Plain source into dictionary chunks (the compatibility
                // path — the batch transport is normally dictionary-
                // encoded): intern row-wise, spill handled per column.
                scatter_strings_interning(chunks, attr, rows, groups, |r| s[r as usize].clone());
                return;
            }
            // Plain → plain: accumulate per-group bytes alongside the
            // clones.
            let mut bytes = vec![0u64; chunks.len()];
            {
                let mut dsts: Vec<&mut Vec<String>> = chunks
                    .iter_mut()
                    .map(|c| match &mut c.columns[attr] {
                        AttributeColumn::Str(v) => v,
                        _ => unreachable!("batch was validated against the schema"),
                    })
                    .collect();
                for (i, r) in rows.enumerate() {
                    let g = groups.group_of[i] as usize;
                    let v = &s[r as usize];
                    bytes[g] += v.len() as u64 + 4;
                    dsts[g].push(v.clone());
                }
            }
            for (chunk, b) in chunks.iter_mut().zip(bytes) {
                chunk.bytes += b;
            }
        }
    }
}

/// The dictionary-source half of the string scatter, serving both
/// dictionary and plain chunk targets.
///
/// For dictionary targets this is the hot path: pass A walks the listed
/// rows once building a per-group `src code → dst code` remap table and
/// each group's dictionary in first-seen row order (at most one string
/// clone per *distinct* value per chunk — never per row), and decides
/// which groups spill (more distinct strings than the cap; those groups'
/// columns are replaced with plain storage, exactly the state sequential
/// insertion would have reached). Pass B then moves one `u32` per row for
/// dictionary groups and decodes rows only for spilled or plain-target
/// groups.
fn scatter_dict_column(
    chunks: &mut [Chunk],
    attr: usize,
    src: &DictColumn,
    rows: impl RowSel,
    groups: &RowGroups,
) {
    /// Pass-B destination: one tail per group.
    enum Tail<'a> {
        Dict(&'a mut Vec<u32>),
        Plain(&'a mut Vec<String>),
    }
    /// Largest `groups × src-dictionary` remap footprint pass A will
    /// allocate (u32 slots, so 64 MB at the cap). A degenerate batch —
    /// near-unique strings (the transport dictionary is uncapped) spread
    /// over many chunks — falls back to the row-wise interning scatter,
    /// whose memory is proportional to what the chunks actually store
    /// and whose result is identical (sequential push semantics).
    const DENSE_REMAP_MAX_SLOTS: usize = 1 << 24;
    let src_dict = src.dict();
    let codes = src.codes();
    let dict_target =
        matches!(chunks.first().map(|c| &c.columns[attr]), Some(AttributeColumn::Dict(_)));
    if dict_target && chunks.len().saturating_mul(src_dict.len()) > DENSE_REMAP_MAX_SLOTS {
        scatter_strings_interning(chunks, attr, rows, groups, |r| {
            src_dict.get(codes[r as usize]).expect("codes index the dictionary").to_string()
        });
        return;
    }
    // Pass A: per-group first-seen remap tables. `remap[g][src_code]` is
    // the destination code (or `u32::MAX` while unseen).
    let mut remap: Vec<Vec<u32>> = Vec::new();
    if dict_target {
        remap = vec![vec![u32::MAX; src_dict.len()]; chunks.len()];
        // Each group's src codes in first-seen order.
        let mut orders: Vec<Vec<u32>> = vec![Vec::new(); chunks.len()];
        for (i, r) in rows.clone().enumerate() {
            let g = groups.group_of[i] as usize;
            let code = codes[r as usize] as usize;
            if remap[g][code] == u32::MAX {
                remap[g][code] = orders[g].len() as u32;
                orders[g].push(code as u32);
            }
        }
        // Build each group's dictionary — or spill the group to plain
        // storage when its cardinality crosses the cap (the column is
        // still empty here, so the replacement is free).
        for (g, chunk) in chunks.iter_mut().enumerate() {
            let AttributeColumn::Dict(dst) = &mut chunk.columns[attr] else {
                unreachable!("probed as dictionary above")
            };
            if orders[g].len() > dst.cap() as usize {
                chunk.columns[attr] =
                    AttributeColumn::Str(Vec::with_capacity(groups.counts[g] as usize));
            } else {
                let mut dict_bytes = 0u64;
                for &code in &orders[g] {
                    let s = src_dict.get(code).expect("codes index the dictionary");
                    dict_bytes += s.len() as u64 + 4;
                    dst.intern_in_order(s);
                }
                chunk.bytes += dict_bytes;
            }
        }
    }
    // Pass B: scatter codes (or decoded strings for plain/spilled
    // groups).
    let mut bytes = vec![0u64; chunks.len()];
    {
        let mut tails: Vec<Tail<'_>> = chunks
            .iter_mut()
            .map(|c| match &mut c.columns[attr] {
                AttributeColumn::Dict(d) => Tail::Dict(d.codes_mut()),
                AttributeColumn::Str(v) => Tail::Plain(v),
                _ => unreachable!("batch was validated against the schema"),
            })
            .collect();
        for (i, r) in rows.enumerate() {
            let g = groups.group_of[i] as usize;
            let code = codes[r as usize];
            match &mut tails[g] {
                Tail::Dict(dst) => {
                    dst.push(remap[g][code as usize]);
                    bytes[g] += 4;
                }
                Tail::Plain(dst) => {
                    let s = src_dict.get(code).expect("codes index the dictionary");
                    bytes[g] += s.len() as u64 + 4;
                    dst.push(s.to_string());
                }
            }
        }
    }
    for (chunk, b) in chunks.iter_mut().zip(bytes) {
        chunk.bytes += b;
    }
}

/// Row-wise interning scatter: push each listed row's string through the
/// destination column's own `push_str` (dictionary insert with spill, or
/// plain push), with per-group byte deltas folded into the chunks. Used
/// where a remap table does not apply — a plain source feeding
/// dictionary-encoded chunks.
fn scatter_strings_interning(
    chunks: &mut [Chunk],
    attr: usize,
    rows: impl RowSel,
    groups: &RowGroups,
    mut take: impl FnMut(u32) -> String,
) {
    let mut bytes = vec![0i64; chunks.len()];
    for (i, r) in rows.enumerate() {
        let g = groups.group_of[i] as usize;
        bytes[g] += chunks[g].columns[attr].push_str(take(r));
    }
    for (chunk, b) in chunks.iter_mut().zip(bytes) {
        chunk.bytes = chunk.bytes.checked_add_signed(b).expect("byte counter underflow");
    }
}

/// The consuming variant of [`scatter_column`]: identical for
/// fixed-width types (a copy is a copy) and for dictionary-encoded
/// sources (codes copy either way), but **moves** each plain string out
/// of the spent batch instead of cloning it — every row is scattered to
/// exactly one chunk, so the string allocated by the generator is the
/// string the chunk stores, with no intermediate allocation.
fn scatter_column_taking(
    chunks: &mut [Chunk],
    attr: usize,
    src: &mut AttributeColumn,
    rows: impl RowSel,
    groups: &RowGroups,
) {
    match src {
        AttributeColumn::Str(s) => {
            if matches!(chunks.first().map(|c| &c.columns[attr]), Some(AttributeColumn::Dict(_))) {
                // Plain source into dictionary chunks: the moved string
                // seeds the dictionary on first appearance; duplicates
                // are dropped.
                scatter_strings_interning(chunks, attr, rows, groups, |r| {
                    std::mem::take(&mut s[r as usize])
                });
                return;
            }
            let mut bytes = vec![0u64; chunks.len()];
            {
                let mut dsts: Vec<&mut Vec<String>> = chunks
                    .iter_mut()
                    .map(|c| match &mut c.columns[attr] {
                        AttributeColumn::Str(v) => v,
                        _ => unreachable!("batch was validated against the schema"),
                    })
                    .collect();
                for (i, r) in rows.enumerate() {
                    let g = groups.group_of[i] as usize;
                    let v = std::mem::take(&mut s[r as usize]);
                    bytes[g] += v.len() as u64 + 4;
                    dsts[g].push(v);
                }
            }
            for (chunk, b) in chunks.iter_mut().zip(bytes) {
                chunk.bytes += b;
            }
        }
        shared => scatter_column(chunks, attr, shared, rows, groups),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttributeDef, DimensionDef};
    use crate::value::AttributeType;

    fn schema() -> ArraySchema {
        ArraySchema::new(
            "A",
            vec![
                AttributeDef::new("i", AttributeType::Int32),
                AttributeDef::new("j", AttributeType::Float),
            ],
            vec![DimensionDef::bounded("x", 1, 4, 2), DimensionDef::bounded("y", 1, 4, 2)],
        )
        .unwrap()
    }

    #[test]
    fn push_and_read_cells() {
        let s = schema();
        let mut c = Chunk::new(&s, ChunkCoords::new([0, 0]));
        c.push_cell(&s, vec![1, 1], vec![ScalarValue::Int32(1), ScalarValue::Float(1.3)]).unwrap();
        c.push_cell(&s, vec![2, 2], vec![ScalarValue::Int32(9), ScalarValue::Float(2.7)]).unwrap();
        assert_eq!(c.cell_count(), 2);
        assert_eq!(c.cell(0), Some(&[1i64, 1][..]));
        assert_eq!(c.column(0).unwrap().get(1), Some(ScalarValue::Int32(9)));
        assert!(!c.is_empty());
    }

    #[test]
    fn byte_size_reflects_payload() {
        let s = schema();
        let mut c = Chunk::new(&s, ChunkCoords::new([0, 0]));
        assert_eq!(c.byte_size(), 0);
        c.push_cell(&s, vec![1, 1], vec![ScalarValue::Int32(1), ScalarValue::Float(1.0)]).unwrap();
        // 2 coords * 8 bytes + 4 (int32) + 4 (float)
        assert_eq!(c.byte_size(), 16 + 8);
    }

    #[test]
    fn type_mismatch_leaves_chunk_unchanged() {
        let s = schema();
        let mut c = Chunk::new(&s, ChunkCoords::new([0, 0]));
        let err = c
            .push_cell(&s, vec![1, 1], vec![ScalarValue::Float(1.0), ScalarValue::Float(1.0)])
            .unwrap_err();
        assert!(matches!(err, ArrayError::TypeMismatch { .. }));
        assert_eq!(c.cell_count(), 0);
        assert!(c.column(0).unwrap().is_empty());
        assert!(c.column(1).unwrap().is_empty());
    }

    #[test]
    fn arity_checks() {
        let s = schema();
        let mut c = Chunk::new(&s, ChunkCoords::new([0, 0]));
        assert!(c
            .push_cell(&s, vec![1], vec![ScalarValue::Int32(1), ScalarValue::Float(1.0)])
            .is_err());
        assert!(c.push_cell(&s, vec![1, 1], vec![ScalarValue::Int32(1)]).is_err());
    }

    #[test]
    fn push_cells_equals_per_cell_pushes() {
        use crate::cells::CellBuffer;
        let s = schema();
        let rows: [(i64, i64, i32, f32); 4] =
            [(1, 1, 1, 1.3), (2, 2, 9, 2.7), (1, 2, 3, 4.2), (2, 1, 6, 2.5)];
        let mut buf = CellBuffer::new(&s);
        let mut scratch = Vec::new();
        let mut per_cell = Chunk::new(&s, ChunkCoords::new([0, 0]));
        for (x, y, i, j) in rows {
            per_cell
                .push_cell(&s, vec![x, y], vec![ScalarValue::Int32(i), ScalarValue::Float(j)])
                .unwrap();
            scratch.extend([ScalarValue::Int32(i), ScalarValue::Float(j)]);
            buf.push_row(&[x, y], &mut scratch).unwrap();
        }
        // Bulk in two slices (appends compose), plus an empty no-op.
        let mut bulk = Chunk::new(&s, ChunkCoords::new([0, 0]));
        bulk.push_cells(&s, &buf, &[0, 1]).unwrap();
        bulk.push_cells(&s, &buf, &[2, 3]).unwrap();
        bulk.push_cells(&s, &buf, &[]).unwrap();
        assert_eq!(bulk, per_cell);
        assert_eq!(bulk.byte_size(), per_cell.byte_size());
        assert_eq!(bulk.descriptor(ArrayId(1)), per_cell.descriptor(ArrayId(1)));
        // A shape-mismatched buffer is rejected once, before mutation.
        let other = ArraySchema::parse("Z<i:int32>[x=1:4,2, y=1:4,2]").unwrap();
        let err = bulk.push_cells(&other, &buf, &[0]).unwrap_err();
        assert!(matches!(err, ArrayError::Arity { .. }));
        assert_eq!(bulk.cell_count(), 4);
    }

    #[test]
    fn retract_decrements_counters_exactly() {
        let s = schema();
        let mut c = Chunk::new(&s, ChunkCoords::new([0, 0]));
        c.push_cell(&s, vec![1, 1], vec![ScalarValue::Int32(1), ScalarValue::Float(1.3)]).unwrap();
        c.push_cell(&s, vec![2, 2], vec![ScalarValue::Int32(9), ScalarValue::Float(2.7)]).unwrap();
        let before = c.byte_size();
        // 2 coords * 8 + 4 (int32) + 4 (float)
        assert_eq!(c.retract_cell(&[1, 1]), Some(16 + 8));
        assert_eq!(c.cell_count(), 1);
        assert_eq!(c.byte_size(), before - 24);
        assert_eq!(c.tombstone_count(), 1);
        assert_eq!(c.physical_cell_count(), 2);
        // The tombstoned row is invisible to iteration but physically present.
        let live: Vec<usize> = c.iter_cells().map(|(_, i)| i).collect();
        assert_eq!(live, vec![1]);
        assert!(c.is_tombstoned(0));
        assert_eq!(c.cell(0), Some(&[1i64, 1][..]));
        // A second retraction of the same cell finds nothing.
        assert_eq!(c.retract_cell(&[1, 1]), None);
        assert_eq!(c.retract_cell(&[3, 3]), None);
        // Retracting everything leaves an empty chunk.
        assert_eq!(c.retract_cell(&[2, 2]), Some(24));
        assert!(c.is_empty());
        assert_eq!(c.byte_size(), 0);
    }

    #[test]
    fn retract_takes_the_most_recent_duplicate() {
        let s = schema();
        let mut c = Chunk::new(&s, ChunkCoords::new([0, 0]));
        for v in [1, 2] {
            c.push_cell(&s, vec![1, 1], vec![ScalarValue::Int32(v), ScalarValue::Float(0.0)])
                .unwrap();
        }
        assert!(c.retract_cell(&[1, 1]).is_some());
        assert!(c.is_tombstoned(1), "the most recent insertion dies first");
        assert!(!c.is_tombstoned(0));
        assert!(c.retract_cell(&[1, 1]).is_some());
        assert!(c.is_tombstoned(0));
    }

    #[test]
    fn compact_equals_building_only_survivors() {
        let s = ArraySchema::parse("A<i:int32, s:string>[x=1:8,8, y=1:8,8]").unwrap();
        for encoding in [
            StringEncoding::Plain,
            StringEncoding::Dict { cap: 2 }, // spill-forcing
            StringEncoding::Dict { cap: 64 },
        ] {
            let mut c = Chunk::with_encoding(&s, ChunkCoords::new([0, 0]), encoding);
            let vals = ["a", "b", "c", "d", "a", "b"];
            for (k, v) in vals.iter().enumerate() {
                let x = k as i64 + 1;
                c.push_cell(
                    &s,
                    vec![x, x],
                    vec![ScalarValue::Int32(k as i32), ScalarValue::Str((*v).to_string())],
                )
                .unwrap();
            }
            // Kill the rows carrying "c" and "d": survivors fit cap 2 again.
            assert!(c.retract_cell(&[3, 3]).is_some());
            assert!(c.retract_cell(&[4, 4]).is_some());
            let live_bytes = c.byte_size();
            c.compact();
            let mut survivors = Chunk::with_encoding(&s, ChunkCoords::new([0, 0]), encoding);
            for (k, v) in [(0usize, "a"), (1, "b"), (4, "a"), (5, "b")] {
                let x = k as i64 + 1;
                survivors
                    .push_cell(
                        &s,
                        vec![x, x],
                        vec![ScalarValue::Int32(k as i32), ScalarValue::Str(v.to_string())],
                    )
                    .unwrap();
            }
            assert_eq!(c, survivors, "compact under {encoding:?}");
            assert_eq!(c.byte_size(), survivors.byte_size());
            assert_eq!(c.cell_count(), 4);
            if encoding == StringEncoding::Plain {
                // Plain columns carry no shared state: the tombstone
                // decrements already matched the survivors exactly.
                assert_eq!(live_bytes, survivors.byte_size());
            }
        }
    }

    #[test]
    fn compact_noop_without_tombstones() {
        let s = schema();
        let mut c = Chunk::new(&s, ChunkCoords::new([0, 0]));
        c.push_cell(&s, vec![1, 1], vec![ScalarValue::Int32(1), ScalarValue::Float(1.3)]).unwrap();
        let before = c.clone();
        assert_eq!(c.compact(), 0);
        assert_eq!(c, before);
    }

    #[test]
    fn descriptor_matches_contents() {
        let s = schema();
        let mut c = Chunk::new(&s, ChunkCoords::new([1, 0]));
        c.push_cell(&s, vec![3, 1], vec![ScalarValue::Int32(4), ScalarValue::Float(4.2)]).unwrap();
        let d = c.descriptor(ArrayId(7));
        assert_eq!(d.key.array, ArrayId(7));
        assert_eq!(d.key.coords, ChunkCoords::new([1, 0]));
        assert_eq!(d.cells, 1);
        assert_eq!(d.bytes, c.byte_size());
    }
}
