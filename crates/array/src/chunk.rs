//! Chunks: the unit of storage, I/O, and placement.
//!
//! A [`Chunk`] holds the non-empty cells of one n-dimensional subarray,
//! vertically partitioned into one [`AttributeColumn`] per attribute.
//! A [`ChunkDescriptor`] is the metadata view — coordinates, byte size,
//! cell count — that partitioners and the cluster simulator reason about.
//! At paper scale (hundreds of GB) only descriptors are materialized;
//! tests and examples materialize full chunks.

use crate::coords::ChunkCoords;
use crate::error::{ArrayError, Result};
use crate::schema::ArraySchema;
use crate::value::{AttributeColumn, ScalarValue};
use serde::{Deserialize, Serialize};

/// Identifier for an array within a catalog/cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ArrayId(pub u32);

impl std::fmt::Display for ArrayId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "array#{}", self.0)
    }
}

/// Globally unique chunk key: which array, which chunk position.
///
/// `Copy` since the coordinate vector is stored inline: keys move through
/// the placement hot path by value, with no heap traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ChunkKey {
    /// Owning array.
    pub array: ArrayId,
    /// Chunk position within the array.
    pub coords: ChunkCoords,
}

impl ChunkKey {
    /// Construct a key.
    pub fn new(array: ArrayId, coords: ChunkCoords) -> Self {
        ChunkKey { array, coords }
    }
}

impl std::fmt::Display for ChunkKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@{}", self.array, self.coords)
    }
}

/// Metadata describing one stored chunk — everything data placement needs.
///
/// Physical chunk size is variable: it reflects the number of non-empty
/// cells actually stored, not the declared chunk volume (§2). Skew shows
/// up as high variance in `bytes` across descriptors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkDescriptor {
    /// Chunk identity.
    pub key: ChunkKey,
    /// Total stored bytes across all attribute columns.
    pub bytes: u64,
    /// Number of non-empty cells.
    pub cells: u64,
}

impl ChunkDescriptor {
    /// Construct a descriptor.
    pub fn new(key: ChunkKey, bytes: u64, cells: u64) -> Self {
        ChunkDescriptor { key, bytes, cells }
    }
}

/// A materialized chunk: sparse cells stored as a coordinate list plus one
/// column per attribute, all in insertion order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Chunk {
    /// Chunk position within its array.
    pub coords: ChunkCoords,
    /// Cell coordinates of each stored cell (row-major insertion order).
    cell_coords: Vec<Vec<i64>>,
    /// One column per schema attribute.
    columns: Vec<AttributeColumn>,
}

impl Chunk {
    /// An empty chunk at `coords` shaped by `schema`'s attributes.
    pub fn new(schema: &ArraySchema, coords: ChunkCoords) -> Self {
        Chunk {
            coords,
            cell_coords: Vec::new(),
            columns: schema.attributes.iter().map(|a| AttributeColumn::new(a.ty)).collect(),
        }
    }

    /// Append one cell. The caller is responsible for having routed the
    /// cell to the right chunk (see [`crate::coords::chunk_of`]).
    pub fn push_cell(
        &mut self,
        schema: &ArraySchema,
        cell: Vec<i64>,
        values: Vec<ScalarValue>,
    ) -> Result<()> {
        if cell.len() != schema.ndims() {
            return Err(ArrayError::Arity { expected: schema.ndims(), got: cell.len() });
        }
        if values.len() != schema.attributes.len() {
            return Err(ArrayError::Arity { expected: schema.attributes.len(), got: values.len() });
        }
        // Validate types before mutating any column, so a failed push
        // leaves the chunk consistent.
        for (attr, value) in schema.attributes.iter().zip(&values) {
            if attr.ty != value.value_type() {
                return Err(ArrayError::TypeMismatch {
                    attribute: attr.name.clone(),
                    expected: attr.ty.name(),
                    got: value.value_type().name(),
                });
            }
        }
        for (col, value) in self.columns.iter_mut().zip(values) {
            col.push(value).expect("types were validated above");
        }
        self.cell_coords.push(cell);
        Ok(())
    }

    /// Number of stored (non-empty) cells.
    pub fn cell_count(&self) -> u64 {
        self.cell_coords.len() as u64
    }

    /// True when the chunk stores no cells.
    pub fn is_empty(&self) -> bool {
        self.cell_coords.is_empty()
    }

    /// Stored bytes across all columns plus the coordinate list.
    pub fn byte_size(&self) -> u64 {
        let coord_bytes: u64 = self.cell_coords.iter().map(|c| (c.len() * 8) as u64).sum();
        coord_bytes + self.columns.iter().map(AttributeColumn::byte_size).sum::<u64>()
    }

    /// The coordinates of cell `idx`.
    pub fn cell(&self, idx: usize) -> Option<&[i64]> {
        self.cell_coords.get(idx).map(Vec::as_slice)
    }

    /// The column for attribute index `attr`.
    pub fn column(&self, attr: usize) -> Option<&AttributeColumn> {
        self.columns.get(attr)
    }

    /// Iterate `(cell_coords, row_index)` pairs.
    pub fn iter_cells(&self) -> impl Iterator<Item = (&[i64], usize)> {
        self.cell_coords.iter().enumerate().map(|(i, c)| (c.as_slice(), i))
    }

    /// Metadata descriptor for this chunk.
    pub fn descriptor(&self, array: ArrayId) -> ChunkDescriptor {
        ChunkDescriptor {
            key: ChunkKey::new(array, self.coords),
            bytes: self.byte_size(),
            cells: self.cell_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttributeDef, DimensionDef};
    use crate::value::AttributeType;

    fn schema() -> ArraySchema {
        ArraySchema::new(
            "A",
            vec![
                AttributeDef::new("i", AttributeType::Int32),
                AttributeDef::new("j", AttributeType::Float),
            ],
            vec![DimensionDef::bounded("x", 1, 4, 2), DimensionDef::bounded("y", 1, 4, 2)],
        )
        .unwrap()
    }

    #[test]
    fn push_and_read_cells() {
        let s = schema();
        let mut c = Chunk::new(&s, ChunkCoords::new([0, 0]));
        c.push_cell(&s, vec![1, 1], vec![ScalarValue::Int32(1), ScalarValue::Float(1.3)]).unwrap();
        c.push_cell(&s, vec![2, 2], vec![ScalarValue::Int32(9), ScalarValue::Float(2.7)]).unwrap();
        assert_eq!(c.cell_count(), 2);
        assert_eq!(c.cell(0), Some(&[1i64, 1][..]));
        assert_eq!(c.column(0).unwrap().get(1), Some(ScalarValue::Int32(9)));
        assert!(!c.is_empty());
    }

    #[test]
    fn byte_size_reflects_payload() {
        let s = schema();
        let mut c = Chunk::new(&s, ChunkCoords::new([0, 0]));
        assert_eq!(c.byte_size(), 0);
        c.push_cell(&s, vec![1, 1], vec![ScalarValue::Int32(1), ScalarValue::Float(1.0)]).unwrap();
        // 2 coords * 8 bytes + 4 (int32) + 4 (float)
        assert_eq!(c.byte_size(), 16 + 8);
    }

    #[test]
    fn type_mismatch_leaves_chunk_unchanged() {
        let s = schema();
        let mut c = Chunk::new(&s, ChunkCoords::new([0, 0]));
        let err = c
            .push_cell(&s, vec![1, 1], vec![ScalarValue::Float(1.0), ScalarValue::Float(1.0)])
            .unwrap_err();
        assert!(matches!(err, ArrayError::TypeMismatch { .. }));
        assert_eq!(c.cell_count(), 0);
        assert!(c.column(0).unwrap().is_empty());
        assert!(c.column(1).unwrap().is_empty());
    }

    #[test]
    fn arity_checks() {
        let s = schema();
        let mut c = Chunk::new(&s, ChunkCoords::new([0, 0]));
        assert!(c
            .push_cell(&s, vec![1], vec![ScalarValue::Int32(1), ScalarValue::Float(1.0)])
            .is_err());
        assert!(c.push_cell(&s, vec![1, 1], vec![ScalarValue::Int32(1)]).is_err());
    }

    #[test]
    fn descriptor_matches_contents() {
        let s = schema();
        let mut c = Chunk::new(&s, ChunkCoords::new([1, 0]));
        c.push_cell(&s, vec![3, 1], vec![ScalarValue::Int32(4), ScalarValue::Float(4.2)]).unwrap();
        let d = c.descriptor(ArrayId(7));
        assert_eq!(d.key.array, ArrayId(7));
        assert_eq!(d.key.coords, ChunkCoords::new([1, 0]));
        assert_eq!(d.cells, 1);
        assert_eq!(d.bytes, c.byte_size());
    }
}
