//! Flat, columnar batches of raw cells — the wire format of materialized
//! ingest.
//!
//! A [`CellBuffer`] holds one batch of `(coordinates, values)` rows in
//! structure-of-arrays form: a single contiguous `i64` coordinate buffer
//! (stride = the schema's dimensionality) plus one typed
//! [`AttributeColumn`] per attribute. Workload generators emit rows
//! directly into this shape, so the whole row → chunk pipeline moves
//! columns, not per-cell `Vec`s: routing reads coordinate slices in
//! place, and chunk building copies column segments with the type
//! dispatch hoisted out of the row loop (see [`Chunk::push_cells`]).
//! String values intern into a per-column transport dictionary as they
//! are emitted, so a buffered string is a `u32` code and the scatter
//! into dictionary-encoded chunks is a code remap, not a string move.
//!
//! [`Chunk::push_cells`]: crate::chunk::Chunk::push_cells

use crate::coords::{chunk_of, ChunkCoords};
use crate::error::{ArrayError, Result};
use crate::schema::ArraySchema;
use crate::value::{AttributeColumn, ScalarValue, StringEncoding};

/// A batch of raw cells in flat columnar form, shaped by one schema.
///
/// Rows keep their emission order; `CellBuffer` never reorders or
/// deduplicates. The buffer's columns are typed at construction, so
/// consumers validate a whole batch against a schema with one
/// column-type comparison ([`CellBuffer::matches`]) instead of one check
/// per cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellBuffer {
    ndims: usize,
    /// Cell coordinates, flattened row-major with stride `ndims`.
    coords: Vec<i64>,
    /// One typed column per schema attribute.
    columns: Vec<AttributeColumn>,
    /// Coordinates of cells this batch **retracts**, flattened row-major
    /// with stride `ndims`. Retractions carry no values — a delete is
    /// addressed purely by position — and are applied after the batch's
    /// inserts, in listed order.
    retractions: Vec<i64>,
}

impl CellBuffer {
    /// An empty buffer shaped by `schema`'s dimensions and attributes.
    ///
    /// String columns use the **transport** encoding
    /// ([`StringEncoding::transport`]): generators intern each emitted
    /// string into an uncapped per-column dictionary, so a buffered row's
    /// string values are `u32` codes and the whole batch carries each
    /// distinct string once. The storage-side cardinality cap is applied
    /// per *chunk* column when the rows are scattered.
    pub fn new(schema: &ArraySchema) -> Self {
        Self::with_encoding(schema, StringEncoding::transport())
    }

    /// An empty buffer whose string columns use `encoding` —
    /// [`StringEncoding::Plain`] reproduces the pre-dictionary pipeline
    /// (one heap `String` per buffered value, moved into the chunks by
    /// the consuming insert).
    pub fn with_encoding(schema: &ArraySchema, encoding: StringEncoding) -> Self {
        CellBuffer {
            ndims: schema.ndims(),
            coords: Vec::new(),
            columns: schema
                .attributes
                .iter()
                .map(|a| AttributeColumn::with_encoding(a.ty, encoding))
                .collect(),
            retractions: Vec::new(),
        }
    }

    /// Coordinate stride (the schema's dimensionality).
    pub fn ndims(&self) -> usize {
        self.ndims
    }

    /// Number of buffered rows.
    pub fn len(&self) -> usize {
        if self.ndims == 0 {
            return 0;
        }
        self.coords.len() / self.ndims
    }

    /// True when no rows are buffered.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Append one row, draining `values` into the typed columns (the
    /// caller's scratch `Vec` keeps its capacity, so a generator loop
    /// allocates no per-row containers). Validates arity and types
    /// before mutating anything, so a failed push leaves both the buffer
    /// and `values` untouched.
    pub fn push_row(&mut self, cell: &[i64], values: &mut Vec<ScalarValue>) -> Result<()> {
        if cell.len() != self.ndims {
            return Err(ArrayError::Arity { expected: self.ndims, got: cell.len() });
        }
        if values.len() != self.columns.len() {
            return Err(ArrayError::Arity { expected: self.columns.len(), got: values.len() });
        }
        for (i, (col, value)) in self.columns.iter().zip(values.iter()).enumerate() {
            if col.column_type() != value.value_type() {
                // The buffer has no attribute names — report the ordinal.
                return Err(ArrayError::TypeMismatch {
                    attribute: format!("#{i}"),
                    expected: col.column_type().name(),
                    got: value.value_type().name(),
                });
            }
        }
        for (col, value) in self.columns.iter_mut().zip(values.drain(..)) {
            col.push(value).expect("types were validated above");
        }
        self.coords.extend_from_slice(cell);
        Ok(())
    }

    /// The coordinates of row `row` as a slice into the flat buffer.
    pub fn cell(&self, row: usize) -> &[i64] {
        &self.coords[row * self.ndims..(row + 1) * self.ndims]
    }

    /// Record the retraction of the cell at `cell`. Validates arity
    /// only — whether a live cell exists there is resolved at apply
    /// time, against whatever state the target array has then.
    pub fn push_retraction(&mut self, cell: &[i64]) -> Result<()> {
        if cell.len() != self.ndims {
            return Err(ArrayError::Arity { expected: self.ndims, got: cell.len() });
        }
        self.retractions.extend_from_slice(cell);
        Ok(())
    }

    /// Number of retraction rows carried by this batch.
    pub fn retraction_count(&self) -> usize {
        if self.ndims == 0 {
            return 0;
        }
        self.retractions.len() / self.ndims
    }

    /// The flat retraction coordinate buffer (stride
    /// [`CellBuffer::ndims`]).
    pub fn retractions_flat(&self) -> &[i64] {
        &self.retractions
    }

    /// The whole flat coordinate buffer (stride [`CellBuffer::ndims`]).
    pub fn coords_flat(&self) -> &[i64] {
        &self.coords
    }

    /// Split borrow for the consuming scatter: the coordinate buffer
    /// (read) alongside mutable columns (values are *moved* out).
    pub(crate) fn parts_mut(&mut self) -> (&[i64], &mut [AttributeColumn]) {
        (&self.coords, &mut self.columns)
    }

    /// The typed attribute columns, in schema order.
    pub fn columns(&self) -> &[AttributeColumn] {
        &self.columns
    }

    /// Validate the buffer's shape against `schema` — dimensionality and
    /// every column type — once for the whole batch. This is the only
    /// schema check batched ingest pays; per-row work is pure copying.
    pub fn matches(&self, schema: &ArraySchema) -> Result<()> {
        if self.ndims != schema.ndims() {
            return Err(ArrayError::Arity { expected: schema.ndims(), got: self.ndims });
        }
        if self.columns.len() != schema.attributes.len() {
            return Err(ArrayError::Arity {
                expected: schema.attributes.len(),
                got: self.columns.len(),
            });
        }
        for (attr, col) in schema.attributes.iter().zip(&self.columns) {
            if attr.ty != col.column_type() {
                return Err(ArrayError::TypeMismatch {
                    attribute: attr.name.clone(),
                    expected: attr.ty.name(),
                    got: col.column_type().name(),
                });
            }
        }
        Ok(())
    }

    /// Map every row to its owning chunk (pure in the cell, see
    /// [`chunk_of`]), validating bounds for the whole batch before any
    /// consumer mutates state. Errors at the first out-of-bounds row.
    pub fn route(&self, schema: &ArraySchema) -> Result<Vec<ChunkCoords>> {
        if self.ndims != schema.ndims() {
            return Err(ArrayError::Arity { expected: schema.ndims(), got: self.ndims });
        }
        let nd = self.ndims.max(1);
        // Per-dimension parameters hoisted out of the row loop. The body
        // must agree with [`chunk_of`] — after the bounds check the
        // numerator is non-negative, so `chunk_index`'s `div_euclid`
        // reduces to the plain unsigned division used here (pinned by
        // the debug assertion and the batch-vs-per-cell property tests).
        let mut dims = [(0i64, 1i64, None::<i64>); crate::coords::MAX_DIMS];
        for (slot, d) in dims.iter_mut().zip(&schema.dimensions) {
            *slot = (d.start, d.chunk_interval, d.end);
        }
        // Sized up front: collecting an iterator of `Result`s would drop
        // the size hint and regrow the 72-byte-per-row buffer log(n)
        // times.
        let mut out = Vec::with_capacity(self.len());
        for cell in self.coords.chunks_exact(nd) {
            let mut cc = ChunkCoords::zeros(nd);
            let slots = cc.as_mut_slice();
            for (d, (&coord, &(start, interval, end))) in cell.iter().zip(&dims).enumerate() {
                if coord < start || end.is_some_and(|e| coord > e) {
                    return Err(ArrayError::OutOfBounds {
                        dimension: schema.dimensions[d].name.clone(),
                        coordinate: coord,
                    });
                }
                slots[d] = ((coord - start) as u64 / interval as u64) as i64;
            }
            debug_assert_eq!(cc, chunk_of(schema, cell).expect("bounds were checked"));
            out.push(cc);
        }
        Ok(out)
    }

    /// Serialize the batch verbatim — stride, flat coordinates, typed
    /// columns (transport dictionaries included), and retractions — for
    /// the write-ahead log. Replaying a decoded batch through the same
    /// insert path is bit-identical to replaying the original.
    pub fn encode_into(&self, w: &mut durability::ByteWriter) {
        w.put_usize(self.ndims);
        w.put_usize(self.coords.len());
        for &c in &self.coords {
            w.put_i64(c);
        }
        w.put_usize(self.columns.len());
        for col in &self.columns {
            col.encode_into(w);
        }
        w.put_usize(self.retractions.len());
        for &c in &self.retractions {
            w.put_i64(c);
        }
    }

    /// Decode a batch written by [`CellBuffer::encode_into`].
    pub fn decode_from(
        r: &mut durability::ByteReader<'_>,
    ) -> std::result::Result<Self, durability::CodecError> {
        use durability::CodecError;
        let ndims = r.usize("batch ndims")?;
        if ndims > crate::coords::MAX_DIMS {
            return Err(CodecError::Invalid {
                context: "batch ndims",
                detail: format!("{ndims} exceeds MAX_DIMS {}", crate::coords::MAX_DIMS),
            });
        }
        let n_coords = r.usize("batch coord count")?;
        let mut coords = Vec::with_capacity(n_coords.min(1 << 20));
        for _ in 0..n_coords {
            coords.push(r.i64("batch coord")?);
        }
        if ndims > 0 && coords.len() % ndims != 0 {
            return Err(CodecError::Invalid {
                context: "batch coord count",
                detail: format!("{} not a multiple of ndims {ndims}", coords.len()),
            });
        }
        let ncols = r.usize("batch column count")?;
        let mut columns = Vec::with_capacity(ncols.min(256));
        for _ in 0..ncols {
            columns.push(AttributeColumn::decode_from(r)?);
        }
        let rows = coords.len().checked_div(ndims).unwrap_or(0);
        if let Some(bad) = columns.iter().find(|c| c.len() != rows) {
            return Err(CodecError::Invalid {
                context: "batch column",
                detail: format!("column holds {} values, batch has {rows} rows", bad.len()),
            });
        }
        let n_retr = r.usize("batch retraction count")?;
        let mut retractions = Vec::with_capacity(n_retr.min(1 << 20));
        for _ in 0..n_retr {
            retractions.push(r.i64("batch retraction coord")?);
        }
        if ndims > 0 && retractions.len() % ndims != 0 {
            return Err(CodecError::Invalid {
                context: "batch retraction count",
                detail: format!("{} not a multiple of ndims {ndims}", retractions.len()),
            });
        }
        Ok(CellBuffer { ndims, coords, columns, retractions })
    }

    /// Materialize the rows back into `(coords, values)` form — the shape
    /// differential oracles and tests consume. O(rows × attrs) with one
    /// allocation per row per side; not for hot paths.
    pub fn rows(&self) -> Vec<(Vec<i64>, Vec<ScalarValue>)> {
        (0..self.len())
            .map(|r| {
                let values = self
                    .columns
                    .iter()
                    .map(|c| c.get(r).expect("columns cover every row"))
                    .collect();
                (self.cell(r).to_vec(), values)
            })
            .collect()
    }
}

/// Largest chunk-coordinate bounding-box volume the dense row-grouping
/// index will allocate for (u32 slots, so 4 MB at the cap). A batch
/// whose chunks span more positions than this falls back to tree-based
/// grouping.
const DENSE_GROUP_MAX_VOLUME: usize = 1 << 20;

/// The row → chunk partition of one batch: which distinct chunks the
/// listed rows touch, and each listed row's group, positionally aligned
/// with the caller's row list. Group ids are assigned in first-seen
/// order; group *ordering* is unspecified (each chunk is built
/// independently), within-group row order is what determinism rides on.
pub(crate) struct RowGroups {
    /// Chunk position of each group.
    pub coords: Vec<ChunkCoords>,
    /// Rows per group.
    pub counts: Vec<u32>,
    /// `group_of[i]` is the group of the i-th *listed* row.
    pub group_of: Vec<u32>,
}

/// A re-iterable selection of batch rows. The whole-batch case is the
/// plain range `0..n` — no index vector, no per-access indirection; the
/// sharded build workers pass their bucketed index lists.
pub(crate) trait RowSel: Iterator<Item = u32> + Clone {}
impl<I: Iterator<Item = u32> + Clone> RowSel for I {}

/// Partition the selected rows by their routed chunk.
///
/// The common case runs dense: one pass computes the per-dimension
/// bounding box of the routed coordinates, and — when its volume is
/// modest, which holds for every workload batch (a cycle touches a few
/// thousand chunk positions) — each row's group is found by indexing a
/// flat slot table with the linearized coordinate, O(1) with no hashing
/// or tree probes. Batches spanning a huge coordinate box fall back to a
/// `BTreeMap`.
pub(crate) fn group_rows_by_chunk(routed: &[ChunkCoords], rows: impl RowSel) -> RowGroups {
    let mut out = RowGroups { coords: Vec::new(), counts: Vec::new(), group_of: Vec::new() };
    let Some(first) = rows.clone().next() else { return out };
    out.group_of.reserve(rows.size_hint().0);
    let nd = routed[first as usize].ndims();
    // Bounding box of the routed chunk coordinates over the listed rows.
    let mut lo = routed[first as usize];
    let mut hi = lo;
    for r in rows.clone() {
        let c = &routed[r as usize];
        for d in 0..nd {
            lo[d] = lo[d].min(c.index(d));
            hi[d] = hi[d].max(c.index(d));
        }
    }
    let mut volume = 1usize;
    let mut dense = true;
    for d in 0..nd {
        match (hi[d] - lo[d] + 1).try_into().ok().and_then(|s: usize| volume.checked_mul(s)) {
            Some(v) if v <= DENSE_GROUP_MAX_VOLUME => volume = v,
            _ => {
                dense = false;
                break;
            }
        }
    }
    if dense {
        let mut slots = vec![u32::MAX; volume];
        for r in rows {
            let c = &routed[r as usize];
            let mut lin = 0usize;
            for d in 0..nd {
                lin = lin * (hi[d] - lo[d] + 1) as usize + (c.index(d) - lo[d]) as usize;
            }
            let slot = &mut slots[lin];
            if *slot == u32::MAX {
                *slot = out.coords.len() as u32;
                out.coords.push(*c);
                out.counts.push(0);
            }
            out.counts[*slot as usize] += 1;
            out.group_of.push(*slot);
        }
    } else {
        // Degenerate coordinate span: assign group ids through a tree.
        let mut ids: std::collections::BTreeMap<ChunkCoords, u32> =
            std::collections::BTreeMap::new();
        for r in rows {
            let c = routed[r as usize];
            let next = out.coords.len() as u32;
            let id = *ids.entry(c).or_insert_with(|| {
                out.coords.push(c);
                out.counts.push(0);
                next
            });
            out.counts[id as usize] += 1;
            out.group_of.push(id);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> ArraySchema {
        ArraySchema::parse("A<i:int32, s:string>[x=0:7,2, y=0:7,2]").unwrap()
    }

    #[test]
    fn push_row_drains_the_scratch_and_reads_back() {
        let s = schema();
        let mut buf = CellBuffer::new(&s);
        let mut vals = Vec::new();
        vals.extend([ScalarValue::Int32(7), ScalarValue::Str("ab".into())]);
        buf.push_row(&[1, 2], &mut vals).unwrap();
        assert!(vals.is_empty(), "scratch drained into the columns");
        vals.extend([ScalarValue::Int32(9), ScalarValue::Str("c".into())]);
        buf.push_row(&[3, 4], &mut vals).unwrap();
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.cell(1), &[3, 4]);
        let rows = buf.rows();
        assert_eq!(
            rows[0],
            (vec![1, 2], vec![ScalarValue::Int32(7), ScalarValue::Str("ab".into())])
        );
        assert_eq!(rows[1].1[1], ScalarValue::Str("c".into()));
    }

    #[test]
    fn bad_rows_are_rejected_without_mutation() {
        let s = schema();
        let mut buf = CellBuffer::new(&s);
        let mut vals = vec![ScalarValue::Int32(1), ScalarValue::Str("x".into())];
        assert!(matches!(buf.push_row(&[1], &mut vals), Err(ArrayError::Arity { .. })));
        assert_eq!(vals.len(), 2, "failed push must not consume the scratch");
        let mut wrong = vec![ScalarValue::Str("x".into()), ScalarValue::Str("y".into())];
        assert!(matches!(buf.push_row(&[1, 2], &mut wrong), Err(ArrayError::TypeMismatch { .. })));
        assert!(buf.is_empty());
        let mut short = vec![ScalarValue::Int32(1)];
        assert!(matches!(buf.push_row(&[1, 2], &mut short), Err(ArrayError::Arity { .. })));
    }

    #[test]
    fn matches_and_route_validate_once_per_batch() {
        let s = schema();
        let mut buf = CellBuffer::new(&s);
        let mut vals = vec![ScalarValue::Int32(1), ScalarValue::Str("x".into())];
        buf.push_row(&[1, 1], &mut vals).unwrap();
        assert!(buf.matches(&s).is_ok());
        let other = ArraySchema::parse("B<i:int32>[x=0:7,2, y=0:7,2]").unwrap();
        assert!(matches!(buf.matches(&other), Err(ArrayError::Arity { .. })));
        let routed = buf.route(&s).unwrap();
        assert_eq!(routed, vec![ChunkCoords::new([0, 0])]);
        // An out-of-bounds row fails the whole batch before any mutation.
        vals.extend([ScalarValue::Int32(2), ScalarValue::Str("y".into())]);
        buf.push_row(&[7, 7], &mut vals).unwrap();
        assert_eq!(buf.route(&s).unwrap().len(), 2);
        let tight = ArraySchema::parse("A<i:int32, s:string>[x=0:3,2, y=0:3,2]").unwrap();
        assert!(matches!(buf.route(&tight), Err(ArrayError::OutOfBounds { .. })));
    }
}
