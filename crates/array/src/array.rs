//! Arrays: a schema plus the (sparse) set of chunks that hold its cells.

use crate::cells::CellBuffer;
use crate::chunk::{ArrayId, Chunk, ChunkDescriptor, ChunkKey};
use crate::coords::{chunk_of, ChunkCoords};
use crate::error::{ArrayError, Result};
use crate::schema::ArraySchema;
use crate::value::{ScalarValue, StringEncoding};
use std::collections::BTreeMap;
use std::sync::Arc;

/// What a batch retraction ([`Array::delete_cells`]) did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RetractOutcome {
    /// Cells actually tombstoned.
    pub retracted: u64,
    /// Listed cells with no live match (never inserted, or already
    /// retracted).
    pub missing: u64,
    /// Exact bytes the touched chunks shrank by.
    pub freed_bytes: u64,
    /// Positions of the chunks that lost cells, in row-major order.
    pub touched: Vec<ChunkCoords>,
}

/// A materialized array: schema plus chunk storage.
///
/// Only non-empty chunks exist; the on-disk footprint is a function of the
/// cells actually stored (§2). Chunks are kept in a `BTreeMap` so iteration
/// is deterministic (row-major over chunk coordinates).
///
/// Chunks are reference-counted (`Arc`): the materialized ingest path
/// shares each freshly built chunk between a node's payload store and the
/// catalog's whole-array oracle copy, so attaching a payload is a
/// refcount bump, never a deep copy. Mutation goes through
/// [`Arc::make_mut`], which is free while a chunk is unshared (the entire
/// build phase) and degrades to copy-on-write if a shared chunk is ever
/// written — aliased stores can never observe each other's edits.
#[derive(Debug, Clone)]
pub struct Array {
    /// Identifier within the catalog.
    pub id: ArrayId,
    /// The array's schema.
    pub schema: ArraySchema,
    chunks: BTreeMap<ChunkCoords, Arc<Chunk>>,
    /// Physical representation of string columns in chunks this array
    /// builds (per-cell inserts and the batch scatter alike).
    encoding: StringEncoding,
}

impl Array {
    /// An empty array under the default string encoding (dictionary,
    /// [`crate::DEFAULT_DICT_CAP`]).
    pub fn new(id: ArrayId, schema: ArraySchema) -> Self {
        Self::with_encoding(id, schema, StringEncoding::default())
    }

    /// An empty array whose chunks store string columns under `encoding`.
    pub fn with_encoding(id: ArrayId, schema: ArraySchema, encoding: StringEncoding) -> Self {
        Array { id, schema, chunks: BTreeMap::new(), encoding }
    }

    /// The string encoding this array builds chunks with.
    pub fn string_encoding(&self) -> StringEncoding {
        self.encoding
    }

    /// Insert one cell, routing it to (and creating, if needed) its chunk.
    pub fn insert_cell(&mut self, cell: Vec<i64>, values: Vec<ScalarValue>) -> Result<ChunkCoords> {
        let coords = chunk_of(&self.schema, &cell)?;
        let chunk = self
            .chunks
            .entry(coords)
            .or_insert_with(|| Arc::new(Chunk::with_encoding(&self.schema, coords, self.encoding)));
        Arc::make_mut(chunk).push_cell(&self.schema, cell, values)?;
        Ok(coords)
    }

    /// Insert a whole flat batch of cells, routing each row to (and
    /// creating, if needed) its chunk.
    ///
    /// Bit-identical to calling [`Array::insert_cell`] once per row in
    /// buffer order, but validated **once per batch** (shape via
    /// [`CellBuffer::matches`], bounds via [`CellBuffer::route`]) and
    /// copied column-at-a-time per chunk. All-or-nothing: any invalid row
    /// fails the whole batch before the array is touched.
    pub fn insert_batch(&mut self, src: &CellBuffer) -> Result<()> {
        src.matches(&self.schema)?;
        let routed = src.route(&self.schema)?;
        // The whole batch in order: the plain range, so the sweeps pay no
        // index-vector indirection.
        let groups = crate::cells::group_rows_by_chunk(&routed, 0..src.len() as u32);
        let built = Chunk::scatter_cells(
            &self.schema,
            crate::chunk::ColumnSet::Shared(src.columns()),
            src.coords_flat(),
            0..src.len() as u32,
            &groups,
            self.encoding,
        );
        self.merge_built(built);
        Ok(())
    }

    /// Like [`Array::insert_batch`], but consumes the buffer: fixed-width
    /// values copy as before, while strings are **moved** into their
    /// chunks — each one keeps the allocation the generator gave it, so
    /// the whole batch adds zero per-value allocations. Semantically
    /// identical to the borrowing form. This is the single-threaded
    /// ingest hot path; the sharded parallel build borrows instead
    /// (workers cannot move out of a shared batch).
    pub fn insert_batch_owned(&mut self, mut src: CellBuffer) -> Result<()> {
        src.matches(&self.schema)?;
        let routed = src.route(&self.schema)?;
        let rows = 0..src.len() as u32;
        let groups = crate::cells::group_rows_by_chunk(&routed, rows.clone());
        let (flat, cols) = src.parts_mut();
        let built = Chunk::scatter_cells(
            &self.schema,
            crate::chunk::ColumnSet::Taken(cols),
            flat,
            rows,
            &groups,
            self.encoding,
        );
        self.merge_built(built);
        Ok(())
    }

    /// Insert the subset of `src`'s rows listed in `rows` (each `rows[i]`
    /// indexes both the buffer and `routed`, its pre-computed chunk).
    ///
    /// This is the worker half of sharded parallel chunk building: the
    /// caller routes the batch once, partitions rows by chunk onto
    /// workers, and each worker builds its disjoint chunk set with this
    /// method. Rows must be listed in ascending order so in-chunk cell
    /// order matches the sequential build. Shape is validated once per
    /// call; `routed` must come from [`CellBuffer::route`] against this
    /// array's schema (debug-asserted per row — a stale or
    /// foreign-schema routing would otherwise file cells into chunks
    /// that do not own them).
    ///
    /// # Panics
    ///
    /// If a row index is out of range for the buffer or `routed` — an
    /// index error, as with slice indexing, not a validation error.
    pub fn insert_routed_rows(
        &mut self,
        src: &CellBuffer,
        routed: &[ChunkCoords],
        rows: &[u32],
    ) -> Result<()> {
        src.matches(&self.schema)?;
        assert!(
            rows.iter().all(|&r| (r as usize) < src.len() && (r as usize) < routed.len()),
            "row index out of range for a {}-row batch",
            src.len()
        );
        #[cfg(debug_assertions)]
        for &r in rows {
            debug_assert_eq!(
                routed[r as usize],
                crate::coords::chunk_of(&self.schema, src.cell(r as usize))
                    .expect("routed rows are in bounds"),
                "routed[{r}] disagrees with chunk_of against this array's schema"
            );
        }
        let groups = crate::cells::group_rows_by_chunk(routed, rows.iter().copied());
        let built = Chunk::scatter_cells(
            &self.schema,
            crate::chunk::ColumnSet::Shared(src.columns()),
            src.coords_flat(),
            rows.iter().copied(),
            &groups,
            self.encoding,
        );
        self.merge_built(built);
        Ok(())
    }

    /// Apply a flat list of retraction coordinates (stride = the
    /// schema's dimensionality): each cell is routed to its chunk and
    /// the most recently inserted live cell there is tombstoned (see
    /// [`Chunk::retract_cell`]). A cell with no live match counts as
    /// `missing` rather than failing the batch — delete scripts are
    /// replayed against both oracle and store copies, which may already
    /// have pruned a chunk. Emptied chunks are left in place; callers
    /// that need them gone follow up with [`Array::prune_empty`].
    pub fn delete_cells(&mut self, flat: &[i64]) -> Result<RetractOutcome> {
        self.delete_cells_capturing(flat, |_, _| {})
    }

    /// [`Array::delete_cells`], additionally handing each retracted
    /// row's coordinates and attribute values to `captured` — the
    /// negative half of a cycle's logical delta, read through the
    /// tombstone choke point ([`Chunk::retract_cell_indexed`]) before
    /// storage is reclaimed. Missing cells produce no capture.
    pub fn delete_cells_capturing(
        &mut self,
        flat: &[i64],
        mut captured: impl FnMut(&[i64], Vec<ScalarValue>),
    ) -> Result<RetractOutcome> {
        let nd = self.schema.ndims().max(1);
        if !flat.len().is_multiple_of(nd) {
            return Err(ArrayError::Arity { expected: nd, got: flat.len() % nd });
        }
        let mut out = RetractOutcome::default();
        let mut touched = std::collections::BTreeSet::new();
        for cell in flat.chunks_exact(nd) {
            let coords = chunk_of(&self.schema, cell)?;
            let Some(chunk) = self.chunks.get_mut(&coords) else {
                out.missing += 1;
                continue;
            };
            let chunk = Arc::make_mut(chunk);
            match chunk.retract_cell_indexed(cell) {
                Some((row, freed)) => {
                    out.retracted += 1;
                    out.freed_bytes += freed;
                    touched.insert(coords);
                    captured(cell, chunk.row_values(row).expect("retracted row has values"));
                }
                None => out.missing += 1,
            }
        }
        out.touched = touched.into_iter().collect();
        Ok(out)
    }

    /// Drop every empty chunk (all cells retracted), returning the
    /// positions removed in row-major order.
    pub fn prune_empty(&mut self) -> Vec<ChunkCoords> {
        let empty: Vec<ChunkCoords> =
            self.chunks.iter().filter(|(_, c)| c.is_empty()).map(|(c, _)| *c).collect();
        for c in &empty {
            self.chunks.remove(c);
        }
        empty
    }

    /// Compact every chunk that carries tombstones (see
    /// [`Chunk::compact`]), returning the total byte-size delta
    /// (positive = bytes reclaimed).
    pub fn compact_chunks(&mut self) -> i64 {
        let mut delta = 0i64;
        for chunk in self.chunks.values_mut() {
            if chunk.tombstone_count() > 0 {
                delta += Arc::make_mut(chunk).compact();
            }
        }
        delta
    }

    /// Compact one chunk (see [`Chunk::compact`]), returning the byte
    /// delta, or `None` when the position is vacant or tombstone-free.
    /// The per-chunk door the runner's threshold-triggered tombstone GC
    /// walks through, mirroring the cluster-side `compact_chunk` on the
    /// catalog's oracle copy.
    pub fn compact_chunk(&mut self, coords: &ChunkCoords) -> Option<i64> {
        let chunk = self.chunks.get_mut(coords)?;
        (chunk.tombstone_count() > 0).then(|| Arc::make_mut(chunk).compact())
    }

    /// Fold freshly scattered chunks into storage: a vacant position
    /// takes the chunk wholesale; a revisited position appends —
    /// identical to per-cell insertion order.
    fn merge_built(&mut self, built: Vec<Chunk>) {
        for chunk in built {
            match self.chunks.entry(chunk.coords) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(Arc::new(chunk));
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    Arc::make_mut(e.get_mut()).append(chunk);
                }
            }
        }
    }

    /// Consume the array, yielding its chunks in row-major order. Shared
    /// chunks come out as their `Arc` handle — callers that need owned
    /// `Chunk`s use `Arc::unwrap_or_clone`, which is a move whenever the
    /// chunk is unshared.
    pub fn into_chunks(self) -> impl Iterator<Item = (ChunkCoords, Arc<Chunk>)> {
        self.chunks.into_iter()
    }

    /// Move every chunk of `other` into this array. The schemas must be
    /// identical — checked once up front, which is all the validation a
    /// wholesale move needs: cells only ever enter an `Array` through
    /// `insert_cell`'s per-cell checks or the batch inserts' whole-batch
    /// validation against this same schema (or, inductively, through
    /// this method), so `other`'s chunks are already schema-valid and
    /// only occupancy can conflict. All-or-nothing: every position is
    /// checked before any chunk moves, so an occupied position leaves
    /// `self` untouched instead of half-merged.
    pub fn absorb(&mut self, other: Array) -> Result<()> {
        if other.schema != self.schema {
            return Err(ArrayError::InvalidSchema(format!(
                "cannot absorb `{}` into `{}`: schemas differ",
                other.schema.name, self.schema.name
            )));
        }
        if let Some(dup) = other.chunks.keys().find(|c| self.chunks.contains_key(c)) {
            return Err(ArrayError::ChunkOccupied(dup.to_string()));
        }
        self.chunks.extend(other.chunks);
        Ok(())
    }

    /// Number of non-empty chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Total stored cells. O(chunks) — each chunk's count is a counter.
    pub fn cell_count(&self) -> u64 {
        self.chunks.values().map(|c| c.cell_count()).sum()
    }

    /// Total stored bytes. O(chunks) — each chunk's size is a counter.
    pub fn byte_size(&self) -> u64 {
        self.chunks.values().map(|c| c.byte_size()).sum()
    }

    /// Fetch a chunk by position.
    pub fn chunk(&self, coords: &ChunkCoords) -> Option<&Chunk> {
        self.chunks.get(coords).map(Arc::as_ref)
    }

    /// Iterate chunks in row-major chunk-coordinate order.
    pub fn chunks(&self) -> impl Iterator<Item = (&ChunkCoords, &Chunk)> {
        self.chunks.iter().map(|(c, a)| (c, a.as_ref()))
    }

    /// Iterate chunks as their shared (`Arc`) handles, in row-major
    /// order. The materialized ingest path clones these handles into the
    /// node payload stores — a refcount bump per chunk, no cell copies.
    pub fn shared_chunks(&self) -> impl Iterator<Item = (&ChunkCoords, &Arc<Chunk>)> {
        self.chunks.iter()
    }

    /// The shared handle of the chunk at `coords`, if one exists. O(log
    /// chunks) — checkpoint recovery re-aliases node payload stores
    /// through this without scanning the whole array.
    pub fn shared_chunk(&self, coords: &ChunkCoords) -> Option<&Arc<Chunk>> {
        self.chunks.get(coords)
    }

    /// Metadata descriptors for every chunk, in deterministic order.
    pub fn descriptors(&self) -> Vec<ChunkDescriptor> {
        self.chunks.values().map(|c| c.descriptor(self.id)).collect()
    }

    /// The key a chunk at `coords` would have.
    pub fn key_for(&self, coords: &ChunkCoords) -> ChunkKey {
        ChunkKey::new(self.id, *coords)
    }

    /// Serialize the whole array — id, schema, build encoding, and every
    /// chunk verbatim — for checkpoints.
    pub fn encode_into(&self, w: &mut durability::ByteWriter) {
        self.id.encode_into(w);
        self.schema.encode_into(w);
        self.encoding.encode_into(w);
        w.put_usize(self.chunks.len());
        for chunk in self.chunks.values() {
            chunk.encode_into(w);
        }
    }

    /// Decode an array written by [`Array::encode_into`]. Chunks reattach
    /// at their own coordinates; a payload whose chunk coordinates
    /// collide or whose stride disagrees with the schema is rejected.
    pub fn decode_from(
        r: &mut durability::ByteReader<'_>,
    ) -> std::result::Result<Self, durability::CodecError> {
        use durability::CodecError;
        let id = ArrayId::decode_from(r)?;
        let schema = ArraySchema::decode_from(r)?;
        let encoding = StringEncoding::decode_from(r)?;
        let n = r.usize("array chunk count")?;
        let mut chunks = BTreeMap::new();
        for _ in 0..n {
            let chunk = Chunk::decode_from(r)?;
            if chunk.coords.ndims() != schema.ndims() {
                return Err(CodecError::Invalid {
                    context: "array chunk",
                    detail: format!(
                        "chunk at {} has {} dims, schema has {}",
                        chunk.coords,
                        chunk.coords.ndims(),
                        schema.ndims()
                    ),
                });
            }
            if chunks.insert(chunk.coords, Arc::new(chunk)).is_some() {
                return Err(CodecError::Invalid {
                    context: "array chunk",
                    detail: "duplicate chunk coordinates".to_string(),
                });
            }
        }
        Ok(Array { id, schema, chunks, encoding })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttributeDef, DimensionDef};
    use crate::value::AttributeType;

    fn figure1_array() -> Array {
        // The example array of Figure 1: 4x4, 2x2 chunks, 6 non-empty cells.
        let schema = ArraySchema::parse("A<i:int32, j:float>[x=1:4,2, y=1:4,2]").unwrap();
        let mut a = Array::new(ArrayId(0), schema);
        let cells: [(i64, i64, i32, f32); 6] = [
            (1, 1, 1, 1.3),
            (2, 3, 9, 2.7),
            (3, 2, 3, 4.2),
            (3, 3, 6, 2.5),
            (2, 4, 4, 3.5),
            (3, 4, 7, 7.2),
        ];
        for (x, y, i, j) in cells {
            a.insert_cell(vec![x, y], vec![ScalarValue::Int32(i), ScalarValue::Float(j)]).unwrap();
        }
        a
    }

    #[test]
    fn figure1_example_stores_six_cells() {
        let a = figure1_array();
        assert_eq!(a.cell_count(), 6);
        // Cells cluster in the center: chunks (0,0),(0,1),(1,0),(1,1) exist
        // per the figure's occupancy.
        assert!(a.chunk_count() >= 3);
        assert!(a.byte_size() > 0);
    }

    #[test]
    fn insert_routes_to_correct_chunk() {
        let mut a = figure1_array();
        let coords = a
            .insert_cell(vec![4, 4], vec![ScalarValue::Int32(5), ScalarValue::Float(0.5)])
            .unwrap();
        assert_eq!(coords, ChunkCoords::new([1, 1]));
        assert!(a.chunk(&coords).unwrap().cell_count() >= 1);
    }

    #[test]
    fn descriptors_cover_all_chunks() {
        let a = figure1_array();
        let descs = a.descriptors();
        assert_eq!(descs.len(), a.chunk_count());
        let total: u64 = descs.iter().map(|d| d.bytes).sum();
        assert_eq!(total, a.byte_size());
        for d in &descs {
            assert_eq!(d.key.array, a.id);
        }
    }

    #[test]
    fn absorb_moves_arrays_wholesale() {
        let src = figure1_array();
        let mut dst = Array::new(src.id, src.schema.clone());
        dst.absorb(src.clone()).unwrap();
        assert_eq!(dst.cell_count(), src.cell_count());
        assert_eq!(dst.byte_size(), src.byte_size());
        // Absorbing the same chunks again collides on the first position.
        assert!(matches!(dst.absorb(src.clone()), Err(ArrayError::ChunkOccupied(_))));
        // A different schema is rejected outright.
        let other = ArraySchema::parse("Z<i:int32>[x=1:4,2]").unwrap();
        let foreign = Array::new(ArrayId(1), other);
        assert!(matches!(dst.absorb(foreign), Err(ArrayError::InvalidSchema(_))));

        // All-or-nothing: a collision at a *later* position must leave the
        // destination untouched — no chunks from before the collision
        // point may have moved in.
        let mut tail = Array::new(src.id, src.schema.clone());
        tail.insert_cell(vec![4, 4], vec![ScalarValue::Int32(5), ScalarValue::Float(0.5)]).unwrap(); // chunk (1,1): occupied in dst, sorts after (0,0)
        let mut incoming = Array::new(src.id, src.schema.clone());
        incoming
            .insert_cell(vec![1, 1], vec![ScalarValue::Int32(2), ScalarValue::Float(0.1)])
            .unwrap(); // chunk (0,0): free in tail
        incoming
            .insert_cell(vec![3, 3], vec![ScalarValue::Int32(3), ScalarValue::Float(0.2)])
            .unwrap(); // chunk (1,1): collides
        let before = tail.cell_count();
        assert!(matches!(tail.absorb(incoming), Err(ArrayError::ChunkOccupied(_))));
        assert_eq!(tail.cell_count(), before, "failed absorb must not half-merge");
        assert!(tail.chunk(&ChunkCoords::new([0, 0])).is_none());
    }

    #[test]
    fn delete_cells_tombstones_and_prunes() {
        let mut a = figure1_array();
        let before_bytes = a.byte_size();
        // (1,1) lives alone in chunk (0,0); (2,3)/(2,4) share chunk (0,1).
        let out = a.delete_cells(&[1, 1, 2, 3, 4, 4]).unwrap();
        assert_eq!(out.retracted, 2);
        assert_eq!(out.missing, 1, "(4,4) was never inserted");
        assert_eq!(a.cell_count(), 4);
        assert_eq!(a.byte_size(), before_bytes - out.freed_bytes);
        assert_eq!(out.touched, vec![ChunkCoords::new([0, 0]), ChunkCoords::new([0, 1])]);
        // Chunk (0,0) is now empty but still present until pruned.
        assert!(a.chunk(&ChunkCoords::new([0, 0])).unwrap().is_empty());
        assert_eq!(a.prune_empty(), vec![ChunkCoords::new([0, 0])]);
        assert!(a.chunk(&ChunkCoords::new([0, 0])).is_none());
        // Deleting the same cells again is a no-op, not an error.
        let again = a.delete_cells(&[1, 1, 2, 3]).unwrap();
        assert_eq!(again.retracted, 0);
        assert_eq!(again.missing, 2);
        // Compaction reclaims the tombstoned rows; counters are unchanged.
        let (cells, bytes) = (a.cell_count(), a.byte_size());
        a.compact_chunks();
        assert_eq!((a.cell_count(), a.byte_size()), (cells, bytes));
        assert!(a.chunks().all(|(_, c)| c.tombstone_count() == 0));
    }

    #[test]
    fn out_of_bounds_insert_rejected() {
        let mut a = figure1_array();
        assert!(a
            .insert_cell(vec![9, 1], vec![ScalarValue::Int32(0), ScalarValue::Float(0.0)])
            .is_err());
        let schema = ArraySchema::new(
            "T",
            vec![AttributeDef::new("v", AttributeType::Int32)],
            vec![DimensionDef::unbounded("t", 0, 10)],
        )
        .unwrap();
        let mut ts = Array::new(ArrayId(1), schema);
        // unbounded dimension accepts arbitrarily large coordinates
        ts.insert_cell(vec![1_000_000], vec![ScalarValue::Int32(1)]).unwrap();
        assert_eq!(ts.chunk_count(), 1);
    }
}
