//! Arrays: a schema plus the (sparse) set of chunks that hold its cells.

use crate::chunk::{ArrayId, Chunk, ChunkDescriptor, ChunkKey};
use crate::coords::{chunk_of, ChunkCoords, Region};
use crate::error::Result;
use crate::schema::ArraySchema;
use crate::value::ScalarValue;
use std::collections::BTreeMap;

/// A materialized array: schema plus chunk storage.
///
/// Only non-empty chunks exist; the on-disk footprint is a function of the
/// cells actually stored (§2). Chunks are kept in a `BTreeMap` so iteration
/// is deterministic (row-major over chunk coordinates).
#[derive(Debug, Clone)]
pub struct Array {
    /// Identifier within the catalog.
    pub id: ArrayId,
    /// The array's schema.
    pub schema: ArraySchema,
    chunks: BTreeMap<ChunkCoords, Chunk>,
}

impl Array {
    /// An empty array.
    pub fn new(id: ArrayId, schema: ArraySchema) -> Self {
        Array { id, schema, chunks: BTreeMap::new() }
    }

    /// Insert one cell, routing it to (and creating, if needed) its chunk.
    pub fn insert_cell(&mut self, cell: Vec<i64>, values: Vec<ScalarValue>) -> Result<ChunkCoords> {
        let coords = chunk_of(&self.schema, &cell)?;
        let chunk = self.chunks.entry(coords).or_insert_with(|| Chunk::new(&self.schema, coords));
        chunk.push_cell(&self.schema, cell, values)?;
        Ok(coords)
    }

    /// Number of non-empty chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Total stored cells.
    pub fn cell_count(&self) -> u64 {
        self.chunks.values().map(Chunk::cell_count).sum()
    }

    /// Total stored bytes.
    pub fn byte_size(&self) -> u64 {
        self.chunks.values().map(Chunk::byte_size).sum()
    }

    /// Fetch a chunk by position.
    pub fn chunk(&self, coords: &ChunkCoords) -> Option<&Chunk> {
        self.chunks.get(coords)
    }

    /// Iterate chunks in row-major chunk-coordinate order.
    pub fn chunks(&self) -> impl Iterator<Item = (&ChunkCoords, &Chunk)> {
        self.chunks.iter()
    }

    /// Metadata descriptors for every chunk, in deterministic order.
    pub fn descriptors(&self) -> Vec<ChunkDescriptor> {
        self.chunks.values().map(|c| c.descriptor(self.id)).collect()
    }

    /// The chunks whose extents intersect `region`.
    pub fn chunks_in_region<'a>(
        &'a self,
        region: &'a Region,
    ) -> impl Iterator<Item = (&'a ChunkCoords, &'a Chunk)> + 'a {
        self.chunks.iter().filter(move |(coords, _)| region.intersects_chunk(&self.schema, coords))
    }

    /// The key a chunk at `coords` would have.
    pub fn key_for(&self, coords: &ChunkCoords) -> ChunkKey {
        ChunkKey::new(self.id, *coords)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttributeDef, DimensionDef};
    use crate::value::AttributeType;

    fn figure1_array() -> Array {
        // The example array of Figure 1: 4x4, 2x2 chunks, 6 non-empty cells.
        let schema = ArraySchema::parse("A<i:int32, j:float>[x=1:4,2, y=1:4,2]").unwrap();
        let mut a = Array::new(ArrayId(0), schema);
        let cells: [(i64, i64, i32, f32); 6] = [
            (1, 1, 1, 1.3),
            (2, 3, 9, 2.7),
            (3, 2, 3, 4.2),
            (3, 3, 6, 2.5),
            (2, 4, 4, 3.5),
            (3, 4, 7, 7.2),
        ];
        for (x, y, i, j) in cells {
            a.insert_cell(vec![x, y], vec![ScalarValue::Int32(i), ScalarValue::Float(j)]).unwrap();
        }
        a
    }

    #[test]
    fn figure1_example_stores_six_cells() {
        let a = figure1_array();
        assert_eq!(a.cell_count(), 6);
        // Cells cluster in the center: chunks (0,0),(0,1),(1,0),(1,1) exist
        // per the figure's occupancy.
        assert!(a.chunk_count() >= 3);
        assert!(a.byte_size() > 0);
    }

    #[test]
    fn insert_routes_to_correct_chunk() {
        let mut a = figure1_array();
        let coords = a
            .insert_cell(vec![4, 4], vec![ScalarValue::Int32(5), ScalarValue::Float(0.5)])
            .unwrap();
        assert_eq!(coords, ChunkCoords::new([1, 1]));
        assert!(a.chunk(&coords).unwrap().cell_count() >= 1);
    }

    #[test]
    fn region_scan_finds_only_intersecting_chunks() {
        let a = figure1_array();
        let region = Region::new(vec![1, 1], vec![2, 2]);
        let hits: Vec<_> = a.chunks_in_region(&region).map(|(c, _)| *c).collect();
        assert!(hits.contains(&ChunkCoords::new([0, 0])));
        assert!(!hits.contains(&ChunkCoords::new([1, 1])));
    }

    #[test]
    fn descriptors_cover_all_chunks() {
        let a = figure1_array();
        let descs = a.descriptors();
        assert_eq!(descs.len(), a.chunk_count());
        let total: u64 = descs.iter().map(|d| d.bytes).sum();
        assert_eq!(total, a.byte_size());
        for d in &descs {
            assert_eq!(d.key.array, a.id);
        }
    }

    #[test]
    fn out_of_bounds_insert_rejected() {
        let mut a = figure1_array();
        assert!(a
            .insert_cell(vec![9, 1], vec![ScalarValue::Int32(0), ScalarValue::Float(0.0)])
            .is_err());
        let schema = ArraySchema::new(
            "T",
            vec![AttributeDef::new("v", AttributeType::Int32)],
            vec![DimensionDef::unbounded("t", 0, 10)],
        )
        .unwrap();
        let mut ts = Array::new(ArrayId(1), schema);
        // unbounded dimension accepts arbitrarily large coordinates
        ts.insert_cell(vec![1_000_000], vec![ScalarValue::Int32(1)]).unwrap();
        assert_eq!(ts.chunk_count(), 1);
    }
}
