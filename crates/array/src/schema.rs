//! Array schemas: named dimensions with chunk intervals plus typed attributes.
//!
//! A schema such as
//!
//! ```text
//! A<i:int32, j:float>[x=1:4,2, y=1:4,2]
//! ```
//!
//! declares a 4×4 array with 2×2 chunks and two attributes (paper, Fig. 1).
//! Unbounded dimensions (`time=0:*,1440`) grow with the data, which is how
//! the paper's no-overwrite stores expand monotonically.

use crate::error::{ArrayError, Result};
use crate::value::AttributeType;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One named dimension of an array.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DimensionDef {
    /// Dimension name (`x`, `latitude`, ...).
    pub name: String,
    /// Inclusive lower bound of the coordinate range.
    pub start: i64,
    /// Inclusive upper bound, or `None` for an unbounded dimension
    /// (written `*` in schema text).
    pub end: Option<i64>,
    /// Chunk interval (stride): the length of a chunk along this dimension,
    /// in logical cells. Always ≥ 1.
    pub chunk_interval: i64,
}

impl DimensionDef {
    /// A bounded dimension `name=start:end,chunk_interval`.
    pub fn bounded(name: impl Into<String>, start: i64, end: i64, chunk_interval: i64) -> Self {
        DimensionDef { name: name.into(), start, end: Some(end), chunk_interval }
    }

    /// An unbounded dimension `name=start:*,chunk_interval`.
    pub fn unbounded(name: impl Into<String>, start: i64, chunk_interval: i64) -> Self {
        DimensionDef { name: name.into(), start, end: None, chunk_interval }
    }

    /// Chunk index that the cell coordinate `coord` falls into.
    ///
    /// Chunks are numbered from 0 at `start`; coordinates below `start`
    /// are rejected by validation before this is called.
    pub fn chunk_index(&self, coord: i64) -> i64 {
        (coord - self.start).div_euclid(self.chunk_interval)
    }

    /// The inclusive cell-coordinate range covered by chunk `idx`.
    /// The high end is clamped to the dimension bound when one exists.
    pub fn chunk_range(&self, idx: i64) -> (i64, i64) {
        let lo = self.start + idx * self.chunk_interval;
        let hi = lo + self.chunk_interval - 1;
        match self.end {
            Some(end) => (lo, hi.min(end)),
            None => (lo, hi),
        }
    }

    /// Number of chunks along this dimension, when bounded.
    pub fn chunk_count(&self) -> Option<i64> {
        self.end.map(|end| (end - self.start) / self.chunk_interval + 1)
    }

    /// True when `coord` lies inside the declared range.
    pub fn contains(&self, coord: i64) -> bool {
        coord >= self.start && self.end.is_none_or(|end| coord <= end)
    }
}

impl fmt::Display for DimensionDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.end {
            Some(end) => write!(f, "{}={}:{},{}", self.name, self.start, end, self.chunk_interval),
            None => write!(f, "{}={}:*,{}", self.name, self.start, self.chunk_interval),
        }
    }
}

/// One named, typed attribute of an array.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttributeDef {
    /// Attribute name.
    pub name: String,
    /// Scalar type.
    pub ty: AttributeType,
}

impl AttributeDef {
    /// Construct an attribute definition.
    pub fn new(name: impl Into<String>, ty: AttributeType) -> Self {
        AttributeDef { name: name.into(), ty }
    }
}

impl fmt::Display for AttributeDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.name, self.ty)
    }
}

/// A complete array schema: name, attributes, and dimensions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArraySchema {
    /// Array name.
    pub name: String,
    /// Attribute declarations, in storage order.
    pub attributes: Vec<AttributeDef>,
    /// Dimension declarations, in coordinate order.
    pub dimensions: Vec<DimensionDef>,
}

impl ArraySchema {
    /// Build and validate a schema.
    pub fn new(
        name: impl Into<String>,
        attributes: Vec<AttributeDef>,
        dimensions: Vec<DimensionDef>,
    ) -> Result<Self> {
        let schema = ArraySchema { name: name.into(), attributes, dimensions };
        schema.validate()?;
        Ok(schema)
    }

    fn validate(&self) -> Result<()> {
        if self.name.is_empty() {
            return Err(ArrayError::InvalidSchema("array name is empty".into()));
        }
        if self.dimensions.is_empty() {
            return Err(ArrayError::InvalidSchema("at least one dimension required".into()));
        }
        if self.dimensions.len() > crate::coords::MAX_DIMS {
            return Err(ArrayError::InvalidSchema(format!(
                "at most {} dimensions supported, got {}",
                crate::coords::MAX_DIMS,
                self.dimensions.len()
            )));
        }
        if self.attributes.is_empty() {
            return Err(ArrayError::InvalidSchema("at least one attribute required".into()));
        }
        let mut names: Vec<&str> = self
            .dimensions
            .iter()
            .map(|d| d.name.as_str())
            .chain(self.attributes.iter().map(|a| a.name.as_str()))
            .collect();
        names.sort_unstable();
        if names.windows(2).any(|w| w[0] == w[1]) {
            return Err(ArrayError::InvalidSchema("duplicate dimension/attribute name".into()));
        }
        for dim in &self.dimensions {
            if dim.chunk_interval < 1 {
                return Err(ArrayError::InvalidSchema(format!(
                    "dimension `{}` has non-positive chunk interval",
                    dim.name
                )));
            }
            if let Some(end) = dim.end {
                if end < dim.start {
                    return Err(ArrayError::InvalidSchema(format!(
                        "dimension `{}` has end < start",
                        dim.name
                    )));
                }
            }
        }
        Ok(())
    }

    /// Number of dimensions.
    pub fn ndims(&self) -> usize {
        self.dimensions.len()
    }

    /// Position of the named dimension.
    pub fn dimension_index(&self, name: &str) -> Result<usize> {
        self.dimensions
            .iter()
            .position(|d| d.name == name)
            .ok_or_else(|| ArrayError::UnknownName(name.to_string()))
    }

    /// Position of the named attribute.
    pub fn attribute_index(&self, name: &str) -> Result<usize> {
        self.attributes
            .iter()
            .position(|a| a.name == name)
            .ok_or_else(|| ArrayError::UnknownName(name.to_string()))
    }

    /// Bytes one cell occupies across all attribute columns (fixed-width
    /// estimate; used for synthetic sizing, not for materialized chunks).
    pub fn estimated_cell_bytes(&self) -> u64 {
        self.attributes.iter().map(|a| a.ty.fixed_width() as u64).sum()
    }

    /// Total number of chunk positions in the declared space, when every
    /// dimension is bounded.
    pub fn total_chunk_positions(&self) -> Option<u64> {
        self.dimensions
            .iter()
            .map(|d| d.chunk_count().map(|c| c as u64))
            .try_fold(1u64, |acc, c| c.map(|c| acc * c))
    }

    /// Parse a SciDB-style schema string, e.g.
    /// `A<i:int32,j:float>[x=1:4,2, y=1:4,2]`.
    pub fn parse(text: &str) -> Result<Self> {
        let text = text.trim();
        let lt = text.find('<').ok_or_else(|| parse_err("missing `<`"))?;
        let gt = text.find('>').ok_or_else(|| parse_err("missing `>`"))?;
        let lb = text.find('[').ok_or_else(|| parse_err("missing `[`"))?;
        let rb = text.rfind(']').ok_or_else(|| parse_err("missing `]`"))?;
        if !(lt < gt && gt < lb && lb < rb) {
            return Err(parse_err("malformed bracket structure"));
        }
        let name = text[..lt].trim();
        let attrs_text = &text[lt + 1..gt];
        let dims_text = &text[lb + 1..rb];

        let mut attributes = Vec::new();
        for part in attrs_text.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (aname, aty) =
                part.split_once(':').ok_or_else(|| parse_err("attribute missing `:`"))?;
            let ty = AttributeType::parse(aty.trim())
                .ok_or_else(|| parse_err(&format!("unknown type `{}`", aty.trim())))?;
            attributes.push(AttributeDef::new(aname.trim(), ty));
        }

        // Dimensions are `name=lo:hi,interval` separated by commas; the comma
        // inside each dimension (before the interval) means we must group
        // tokens in pairs.
        let mut dimensions = Vec::new();
        let tokens: Vec<&str> = dims_text.split(',').map(str::trim).collect();
        if !tokens.len().is_multiple_of(2) {
            return Err(parse_err("dimension list must be `name=lo:hi,interval` groups"));
        }
        for pair in tokens.chunks(2) {
            let (spec, interval) = (pair[0], pair[1]);
            let (dname, range) =
                spec.split_once('=').ok_or_else(|| parse_err("dimension missing `=`"))?;
            let (lo, hi) =
                range.split_once(':').ok_or_else(|| parse_err("dimension missing `:`"))?;
            let start: i64 =
                lo.trim().parse().map_err(|_| parse_err(&format!("bad bound `{lo}`")))?;
            let end = match hi.trim() {
                "*" => None,
                v => Some(v.parse::<i64>().map_err(|_| parse_err(&format!("bad bound `{v}`")))?),
            };
            let chunk_interval: i64 =
                interval.parse().map_err(|_| parse_err(&format!("bad interval `{interval}`")))?;
            dimensions.push(DimensionDef {
                name: dname.trim().to_string(),
                start,
                end,
                chunk_interval,
            });
        }

        ArraySchema::new(name, attributes, dimensions)
    }
}

fn parse_err(msg: &str) -> ArrayError {
    ArrayError::Parse(msg.to_string())
}

impl ArraySchema {
    /// Serialize structurally (not via the display text) into a durable
    /// payload.
    pub fn encode_into(&self, w: &mut durability::ByteWriter) {
        w.put_str(&self.name);
        w.put_usize(self.attributes.len());
        for a in &self.attributes {
            w.put_str(&a.name);
            w.put_str(a.ty.name());
        }
        w.put_usize(self.dimensions.len());
        for d in &self.dimensions {
            w.put_str(&d.name);
            w.put_i64(d.start);
            match d.end {
                Some(end) => {
                    w.put_bool(true);
                    w.put_i64(end);
                }
                None => w.put_bool(false),
            }
            w.put_i64(d.chunk_interval);
        }
    }

    /// Decode a schema written by [`ArraySchema::encode_into`]. The
    /// decoded schema re-runs construction validation, so a corrupted
    /// payload cannot smuggle in an invalid shape.
    pub fn decode_from(
        r: &mut durability::ByteReader<'_>,
    ) -> std::result::Result<Self, durability::CodecError> {
        use durability::CodecError;
        let name = r.str("schema name")?;
        let nattrs = r.usize("schema attribute count")?;
        let mut attributes = Vec::with_capacity(nattrs.min(1024));
        for _ in 0..nattrs {
            let aname = r.str("attribute name")?;
            let ty_name = r.str("attribute type")?;
            let ty = AttributeType::parse(&ty_name).ok_or_else(|| CodecError::Invalid {
                context: "attribute type",
                detail: format!("unknown type `{ty_name}`"),
            })?;
            attributes.push(AttributeDef::new(aname, ty));
        }
        let ndims = r.usize("schema dimension count")?;
        let mut dimensions = Vec::with_capacity(ndims.min(crate::coords::MAX_DIMS));
        for _ in 0..ndims {
            let dname = r.str("dimension name")?;
            let start = r.i64("dimension start")?;
            let end = if r.bool("dimension bounded flag")? {
                Some(r.i64("dimension end")?)
            } else {
                None
            };
            let chunk_interval = r.i64("dimension chunk interval")?;
            dimensions.push(DimensionDef { name: dname, start, end, chunk_interval });
        }
        ArraySchema::new(name, attributes, dimensions)
            .map_err(|e| CodecError::Invalid { context: "array schema", detail: e.to_string() })
    }
}

impl fmt::Display for ArraySchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}<", self.name)?;
        for (i, a) in self.attributes.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{a}")?;
        }
        f.write_str(">[")?;
        for (i, d) in self.dimensions.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{d}")?;
        }
        f.write_str("]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1_schema() -> ArraySchema {
        ArraySchema::parse("A<i:int32, j:float>[x=1:4,2, y=1:4,2]").unwrap()
    }

    #[test]
    fn parses_figure1_example() {
        let s = figure1_schema();
        assert_eq!(s.name, "A");
        assert_eq!(s.attributes.len(), 2);
        assert_eq!(s.attributes[0].ty, AttributeType::Int32);
        assert_eq!(s.dimensions.len(), 2);
        assert_eq!(s.dimensions[0].chunk_interval, 2);
        assert_eq!(s.total_chunk_positions(), Some(4));
    }

    #[test]
    fn display_roundtrips() {
        let s = figure1_schema();
        let printed = s.to_string();
        let reparsed = ArraySchema::parse(&printed).unwrap();
        assert_eq!(s, reparsed);
    }

    #[test]
    fn parses_unbounded_time_dimension() {
        let s = ArraySchema::parse(
            "Band<si_value:int, radiance:double>[time=0:*,1440, longitude=-180:180,12, latitude=-90:90,12]",
        )
        .unwrap();
        assert_eq!(s.dimensions[0].end, None);
        assert_eq!(s.dimensions[1].chunk_count(), Some(31));
        assert_eq!(s.total_chunk_positions(), None);
    }

    #[test]
    fn chunk_index_and_range() {
        let d = DimensionDef::bounded("x", 1, 4, 2);
        assert_eq!(d.chunk_index(1), 0);
        assert_eq!(d.chunk_index(2), 0);
        assert_eq!(d.chunk_index(3), 1);
        assert_eq!(d.chunk_range(1), (3, 4));
        assert_eq!(d.chunk_count(), Some(2));
        let neg = DimensionDef::bounded("lon", -180, 180, 12);
        assert_eq!(neg.chunk_index(-180), 0);
        assert_eq!(neg.chunk_index(-169), 0);
        assert_eq!(neg.chunk_index(-168), 1);
        assert_eq!(neg.chunk_range(0), (-180, -169));
    }

    #[test]
    fn validation_rejects_bad_schemas() {
        assert!(ArraySchema::new(
            "",
            vec![AttributeDef::new("a", AttributeType::Int32)],
            vec![DimensionDef::bounded("x", 0, 1, 1)]
        )
        .is_err());
        assert!(ArraySchema::new("A", vec![], vec![DimensionDef::bounded("x", 0, 1, 1)]).is_err());
        assert!(ArraySchema::new("A", vec![AttributeDef::new("a", AttributeType::Int32)], vec![])
            .is_err());
        // zero chunk interval
        assert!(ArraySchema::new(
            "A",
            vec![AttributeDef::new("a", AttributeType::Int32)],
            vec![DimensionDef::bounded("x", 0, 1, 0)]
        )
        .is_err());
        // duplicate names across dims and attrs
        assert!(ArraySchema::new(
            "A",
            vec![AttributeDef::new("x", AttributeType::Int32)],
            vec![DimensionDef::bounded("x", 0, 1, 1)]
        )
        .is_err());
        // inverted range
        assert!(ArraySchema::new(
            "A",
            vec![AttributeDef::new("a", AttributeType::Int32)],
            vec![DimensionDef::bounded("x", 5, 2, 1)]
        )
        .is_err());
    }

    #[test]
    fn name_lookups() {
        let s = figure1_schema();
        assert_eq!(s.dimension_index("y").unwrap(), 1);
        assert_eq!(s.attribute_index("j").unwrap(), 1);
        assert!(s.dimension_index("z").is_err());
        assert!(s.attribute_index("z").is_err());
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "A[x=1:4,2]",          // missing attrs
            "A<i:int32>",          // missing dims
            "A<i:bogus>[x=1:4,2]", // unknown type
            "A<i:int32>[x=1:4]",   // missing interval
            "A<i:int32>[x=1,2]",   // missing range colon
            "A<iint32>[x=1:4,2]",  // missing attr colon
        ] {
            assert!(ArraySchema::parse(bad).is_err(), "{bad} should fail");
        }
    }
}
