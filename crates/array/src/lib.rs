//! # array-model
//!
//! The array data-model substrate for the *Incremental Elasticity for Array
//! Databases* reproduction: SciDB-style multidimensional arrays with named
//! dimensions, typed attributes, vertically-partitioned sparse chunks, and
//! Hilbert space-filling curves over chunk space.
//!
//! The types here are deliberately split between **materialized** storage
//! ([`Chunk`], [`Array`]) used by tests, examples, and small-scale query
//! execution, and **metadata** ([`ChunkDescriptor`]) used by partitioners
//! and the cluster simulator at paper scale (hundreds of gigabytes), where
//! only byte sizes and positions matter.
//!
//! ```
//! use array_model::{Array, ArrayId, ArraySchema, ScalarValue};
//!
//! let schema = ArraySchema::parse("A<i:int32, j:float>[x=1:4,2, y=1:4,2]").unwrap();
//! let mut array = Array::new(ArrayId(0), schema);
//! array.insert_cell(vec![1, 1], vec![ScalarValue::Int32(1), ScalarValue::Float(1.3)]).unwrap();
//! assert_eq!(array.chunk_count(), 1);
//! ```

#![warn(missing_docs)]

mod array;
mod cells;
mod chunk;
mod coords;
mod delta;
mod error;
mod hilbert;
mod schema;
mod value;
pub mod zone;

pub use array::{Array, RetractOutcome};
pub use cells::CellBuffer;
pub use chunk::{ArrayId, Chunk, ChunkDescriptor, ChunkKey};
pub use coords::{all_chunks, chunk_of, CellCoords, ChunkCoords, Region, MAX_DIMS};
pub use delta::{DeltaSet, RowDelta};
pub use error::{ArrayError, Result};
pub use hilbert::{gilbert2d, hilbert_coords, hilbert_index, HilbertOrder};
pub use schema::{ArraySchema, AttributeDef, DimensionDef};
pub use value::{
    AttributeColumn, AttributeType, DictColumn, ScalarValue, StringDict, StringEncoding,
    DEFAULT_DICT_CAP,
};
pub use zone::{AttrZone, DimZone, ZoneMap};
