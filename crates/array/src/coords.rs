//! Cell and chunk coordinates, and the mappings between them.
//!
//! A *cell* lives at an n-dimensional coordinate in array space. A *chunk*
//! is an n-dimensional subarray identified by the vector of per-dimension
//! chunk indices (each `(coord - start) / chunk_interval`). Chunks are the
//! unit of I/O, placement, and movement throughout the system.

use crate::error::{ArrayError, Result};
use crate::schema::ArraySchema;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Coordinates of one cell in array space.
pub type CellCoords = Vec<i64>;

/// Identifier of a chunk: the per-dimension chunk indices.
///
/// Ordered lexicographically (row-major), which gives the "insert order"
/// that the Append partitioner relies on when the first dimension is time.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ChunkCoords(pub Vec<i64>);

impl ChunkCoords {
    /// Construct from raw indices.
    pub fn new(indices: Vec<i64>) -> Self {
        ChunkCoords(indices)
    }

    /// Number of dimensions.
    pub fn ndims(&self) -> usize {
        self.0.len()
    }

    /// The index along dimension `d`.
    pub fn index(&self, d: usize) -> i64 {
        self.0[d]
    }

    /// All chunks at L∞ distance 1 (the 3^n − 1 surrounding chunks),
    /// clipped to non-negative indices and to the schema's bounds.
    ///
    /// Spatial operators (windowed aggregates, kNN) exchange halo data with
    /// exactly these neighbours; placements that keep them on one node pay
    /// no network cost for that exchange.
    #[allow(clippy::needless_range_loop)] // odometer indexes two arrays in lockstep
    pub fn neighbors(&self, schema: &ArraySchema) -> Vec<ChunkCoords> {
        let n = self.ndims();
        let mut out = Vec::new();
        let mut offsets = vec![-1i64; n];
        loop {
            if offsets.iter().any(|&o| o != 0) {
                let mut cand = Vec::with_capacity(n);
                let mut ok = true;
                for d in 0..n {
                    let idx = self.0[d] + offsets[d];
                    if idx < 0 {
                        ok = false;
                        break;
                    }
                    if let Some(count) = schema.dimensions[d].chunk_count() {
                        if idx >= count {
                            ok = false;
                            break;
                        }
                    }
                    cand.push(idx);
                }
                if ok {
                    out.push(ChunkCoords(cand));
                }
            }
            // advance odometer over {-1,0,1}^n
            let mut d = 0;
            loop {
                if d == n {
                    return out;
                }
                offsets[d] += 1;
                if offsets[d] <= 1 {
                    break;
                }
                offsets[d] = -1;
                d += 1;
            }
        }
    }

    /// Chebyshev (L∞) distance between two chunk coordinates.
    pub fn chebyshev(&self, other: &ChunkCoords) -> i64 {
        self.0
            .iter()
            .zip(&other.0)
            .map(|(a, b)| (a - b).abs())
            .max()
            .unwrap_or(0)
    }
}

impl fmt::Display for ChunkCoords {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str(")")
    }
}

/// Map a cell coordinate to the chunk containing it, validating bounds.
pub fn chunk_of(schema: &ArraySchema, cell: &[i64]) -> Result<ChunkCoords> {
    if cell.len() != schema.ndims() {
        return Err(ArrayError::Arity { expected: schema.ndims(), got: cell.len() });
    }
    let mut idx = Vec::with_capacity(cell.len());
    for (dim, &coord) in schema.dimensions.iter().zip(cell) {
        if !dim.contains(coord) {
            return Err(ArrayError::OutOfBounds { dimension: dim.name.clone(), coordinate: coord });
        }
        idx.push(dim.chunk_index(coord));
    }
    Ok(ChunkCoords(idx))
}

/// An axis-aligned rectangular region of array space, in cell coordinates
/// (both bounds inclusive). Queries subset arrays with these.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Region {
    /// Inclusive lower corner, one entry per dimension.
    pub low: Vec<i64>,
    /// Inclusive upper corner, one entry per dimension.
    pub high: Vec<i64>,
}

impl Region {
    /// Build a region; panics if the corners disagree in arity.
    pub fn new(low: Vec<i64>, high: Vec<i64>) -> Self {
        assert_eq!(low.len(), high.len(), "region corners must share arity");
        Region { low, high }
    }

    /// The full declared space of a bounded schema.
    pub fn full(schema: &ArraySchema) -> Option<Region> {
        let mut low = Vec::new();
        let mut high = Vec::new();
        for d in &schema.dimensions {
            low.push(d.start);
            high.push(d.end?);
        }
        Some(Region { low, high })
    }

    /// Number of dimensions.
    pub fn ndims(&self) -> usize {
        self.low.len()
    }

    /// Does the region contain the cell coordinate?
    pub fn contains_cell(&self, cell: &[i64]) -> bool {
        cell.len() == self.ndims()
            && cell
                .iter()
                .enumerate()
                .all(|(d, &c)| c >= self.low[d] && c <= self.high[d])
    }

    /// Does the region intersect the given chunk of `schema`?
    pub fn intersects_chunk(&self, schema: &ArraySchema, chunk: &ChunkCoords) -> bool {
        schema.dimensions.iter().enumerate().all(|(d, dim)| {
            let (lo, hi) = dim.chunk_range(chunk.index(d));
            lo <= self.high[d] && hi >= self.low[d]
        })
    }

    /// Number of cells in the region (logical, not stored).
    pub fn cell_volume(&self) -> u128 {
        self.low
            .iter()
            .zip(&self.high)
            .map(|(lo, hi)| (hi - lo + 1).max(0) as u128)
            .product()
    }
}

/// Iterate over every chunk coordinate of a bounded schema in row-major
/// order. Returns `None` if any dimension is unbounded.
pub fn all_chunks(schema: &ArraySchema) -> Option<Vec<ChunkCoords>> {
    let counts: Option<Vec<i64>> =
        schema.dimensions.iter().map(|d| d.chunk_count()).collect();
    let counts = counts?;
    let mut out = Vec::new();
    let n = counts.len();
    let mut cur = vec![0i64; n];
    loop {
        out.push(ChunkCoords(cur.clone()));
        let mut d = n;
        loop {
            if d == 0 {
                return Some(out);
            }
            d -= 1;
            cur[d] += 1;
            if cur[d] < counts[d] {
                break;
            }
            cur[d] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttributeDef, DimensionDef};
    use crate::value::AttributeType;

    fn schema_2d() -> ArraySchema {
        ArraySchema::new(
            "A",
            vec![AttributeDef::new("v", AttributeType::Int32)],
            vec![DimensionDef::bounded("x", 1, 4, 2), DimensionDef::bounded("y", 1, 4, 2)],
        )
        .unwrap()
    }

    #[test]
    fn cell_to_chunk_mapping() {
        let s = schema_2d();
        assert_eq!(chunk_of(&s, &[1, 1]).unwrap(), ChunkCoords(vec![0, 0]));
        assert_eq!(chunk_of(&s, &[4, 3]).unwrap(), ChunkCoords(vec![1, 1]));
        assert!(matches!(chunk_of(&s, &[5, 1]), Err(ArrayError::OutOfBounds { .. })));
        assert!(matches!(chunk_of(&s, &[1]), Err(ArrayError::Arity { .. })));
    }

    #[test]
    fn all_chunks_row_major() {
        let s = schema_2d();
        let chunks = all_chunks(&s).unwrap();
        assert_eq!(
            chunks,
            vec![
                ChunkCoords(vec![0, 0]),
                ChunkCoords(vec![0, 1]),
                ChunkCoords(vec![1, 0]),
                ChunkCoords(vec![1, 1]),
            ]
        );
    }

    #[test]
    fn neighbors_clip_to_bounds() {
        let s = schema_2d();
        let corner = ChunkCoords(vec![0, 0]);
        let n = corner.neighbors(&s);
        assert_eq!(n.len(), 3); // (0,1), (1,0), (1,1)
        let center_schema = ArraySchema::new(
            "B",
            vec![AttributeDef::new("v", AttributeType::Int32)],
            vec![DimensionDef::bounded("x", 0, 8, 1), DimensionDef::bounded("y", 0, 8, 1)],
        )
        .unwrap();
        let mid = ChunkCoords(vec![4, 4]);
        assert_eq!(mid.neighbors(&center_schema).len(), 8);
    }

    #[test]
    fn region_chunk_intersection() {
        let s = schema_2d();
        let r = Region::new(vec![1, 1], vec![2, 2]); // exactly chunk (0,0)
        assert!(r.intersects_chunk(&s, &ChunkCoords(vec![0, 0])));
        assert!(!r.intersects_chunk(&s, &ChunkCoords(vec![1, 1])));
        assert!(r.contains_cell(&[2, 2]));
        assert!(!r.contains_cell(&[3, 2]));
        assert_eq!(r.cell_volume(), 4);
    }

    #[test]
    fn region_full_of_bounded_schema() {
        let s = schema_2d();
        let r = Region::full(&s).unwrap();
        assert_eq!(r.low, vec![1, 1]);
        assert_eq!(r.high, vec![4, 4]);
        assert_eq!(r.cell_volume(), 16);
    }

    #[test]
    fn chebyshev_distance() {
        let a = ChunkCoords(vec![0, 0, 0]);
        let b = ChunkCoords(vec![2, -1, 1]);
        assert_eq!(a.chebyshev(&b), 2);
        assert_eq!(a.chebyshev(&a), 0);
    }
}
