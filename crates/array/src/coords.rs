//! Cell and chunk coordinates, and the mappings between them.
//!
//! A *cell* lives at an n-dimensional coordinate in array space. A *chunk*
//! is an n-dimensional subarray identified by the vector of per-dimension
//! chunk indices (each `(coord - start) / chunk_interval`). Chunks are the
//! unit of I/O, placement, and movement throughout the system.
//!
//! [`ChunkCoords`] is stored **inline**: a fixed-capacity `[i64; MAX_DIMS]`
//! plus a length, so it is `Copy`, allocation-free, and cache-friendly —
//! the ingest hot path routes millions of chunks per workload cycle and
//! must not heap-allocate per coordinate touch.

use crate::error::{ArrayError, Result};
use crate::schema::ArraySchema;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::hash::{Hash, Hasher};

/// Coordinates of one cell in array space.
pub type CellCoords = Vec<i64>;

/// Maximum dimensionality of an array. Schemas beyond this are rejected at
/// construction; the paper's arrays use 1–3 dimensions.
pub const MAX_DIMS: usize = 8;

/// Identifier of a chunk: the per-dimension chunk indices, stored inline.
///
/// Ordered lexicographically (row-major), which gives the "insert order"
/// that the Append partitioner relies on when the first dimension is time.
/// Equality, ordering, and hashing consider only the first `ndims`
/// entries, exactly as the previous `Vec<i64>` representation did.
#[derive(Clone, Copy)]
pub struct ChunkCoords {
    len: u8,
    idx: [i64; MAX_DIMS],
}

// Serde wire contract: a `ChunkCoords` serializes as the plain `i64`
// sequence of its live indices — the same payload the old `Vec<i64>`
// representation produced — NOT as the `{len, idx}` struct (which would
// leak the inactive tail and, on deserialize, could smuggle in a length
// above `MAX_DIMS`). The in-tree serde is a marker stub, so these impls
// carry no methods today; when swapping in real serde, implement them
// via `serializer.collect_seq(self.iter())` and a seq visitor that
// rejects more than `MAX_DIMS` elements.
impl Serialize for ChunkCoords {}
impl<'de> Deserialize<'de> for ChunkCoords {}

impl ChunkCoords {
    /// Construct from raw indices. Accepts anything slice-like (`Vec`,
    /// arrays, slices). Panics if more than [`MAX_DIMS`] indices are given.
    pub fn new(indices: impl AsRef<[i64]>) -> Self {
        Self::from_slice(indices.as_ref())
    }

    /// Construct from a slice of indices without consuming a container.
    #[inline]
    pub fn from_slice(indices: &[i64]) -> Self {
        assert!(
            indices.len() <= MAX_DIMS,
            "chunk coordinates support at most {MAX_DIMS} dimensions, got {}",
            indices.len()
        );
        let mut idx = [0i64; MAX_DIMS];
        idx[..indices.len()].copy_from_slice(indices);
        ChunkCoords { len: indices.len() as u8, idx }
    }

    /// An all-zero coordinate of `ndims` dimensions.
    #[inline]
    pub fn zeros(ndims: usize) -> Self {
        assert!(ndims <= MAX_DIMS, "at most {MAX_DIMS} dimensions");
        ChunkCoords { len: ndims as u8, idx: [0i64; MAX_DIMS] }
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndims(&self) -> usize {
        self.len as usize
    }

    /// The index along dimension `d`.
    #[inline]
    pub fn index(&self, d: usize) -> i64 {
        self.as_slice()[d]
    }

    /// The live indices as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[i64] {
        &self.idx[..self.len as usize]
    }

    /// The live indices as a mutable slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [i64] {
        &mut self.idx[..self.len as usize]
    }

    /// Iterate the indices.
    pub fn iter(&self) -> std::slice::Iter<'_, i64> {
        self.as_slice().iter()
    }

    /// Copy out as a `Vec` (compatibility with the old representation).
    pub fn to_vec(&self) -> Vec<i64> {
        self.as_slice().to_vec()
    }

    /// Visit all chunks at L∞ distance 1 (the 3^n − 1 surrounding chunks),
    /// clipped to non-negative indices and to the schema's bounds, without
    /// allocating.
    ///
    /// Spatial operators (windowed aggregates, kNN) exchange halo data with
    /// exactly these neighbours; placements that keep them on one node pay
    /// no network cost for that exchange.
    pub fn for_each_neighbor(&self, schema: &ArraySchema, mut visit: impl FnMut(ChunkCoords)) {
        let n = self.ndims();
        let mut offsets = [-1i64; MAX_DIMS];
        let offsets = &mut offsets[..n];
        loop {
            if offsets.iter().any(|&o| o != 0) {
                let mut cand = ChunkCoords::zeros(n);
                let mut ok = true;
                for (d, (slot, &off)) in
                    cand.as_mut_slice().iter_mut().zip(offsets.iter()).enumerate()
                {
                    let idx = self.idx[d] + off;
                    if idx < 0 {
                        ok = false;
                        break;
                    }
                    if let Some(count) = schema.dimensions[d].chunk_count() {
                        if idx >= count {
                            ok = false;
                            break;
                        }
                    }
                    *slot = idx;
                }
                if ok {
                    visit(cand);
                }
            }
            // advance odometer over {-1,0,1}^n
            let mut d = 0;
            loop {
                if d == n {
                    return;
                }
                offsets[d] += 1;
                if offsets[d] <= 1 {
                    break;
                }
                offsets[d] = -1;
                d += 1;
            }
        }
    }

    /// All chunks at L∞ distance 1, collected (see [`for_each_neighbor`]
    /// for the allocation-free form).
    ///
    /// [`for_each_neighbor`]: ChunkCoords::for_each_neighbor
    pub fn neighbors(&self, schema: &ArraySchema) -> Vec<ChunkCoords> {
        let mut out = Vec::new();
        self.for_each_neighbor(schema, |c| out.push(c));
        out
    }

    /// Chebyshev (L∞) distance between two chunk coordinates.
    pub fn chebyshev(&self, other: &ChunkCoords) -> i64 {
        self.iter().zip(other.iter()).map(|(a, b)| (a - b).abs()).max().unwrap_or(0)
    }
}

impl ChunkCoords {
    /// Serialize as the live index sequence (the same shape the serde
    /// contract above promises): a length byte plus `ndims` raw `i64`s.
    pub fn encode_into(&self, w: &mut durability::ByteWriter) {
        w.put_u8(self.len);
        for &v in self.as_slice() {
            w.put_i64(v);
        }
    }

    /// Decode coordinates written by [`ChunkCoords::encode_into`],
    /// rejecting lengths above [`MAX_DIMS`].
    pub fn decode_from(
        r: &mut durability::ByteReader<'_>,
    ) -> std::result::Result<Self, durability::CodecError> {
        let len = r.u8("chunk coord arity")?;
        if usize::from(len) > MAX_DIMS {
            return Err(durability::CodecError::Invalid {
                context: "chunk coord arity",
                detail: format!("{len} exceeds MAX_DIMS {MAX_DIMS}"),
            });
        }
        let mut out = ChunkCoords::zeros(usize::from(len));
        for slot in out.as_mut_slice() {
            *slot = r.i64("chunk coord index")?;
        }
        Ok(out)
    }
}

impl PartialEq for ChunkCoords {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for ChunkCoords {}

impl PartialOrd for ChunkCoords {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ChunkCoords {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Slice ordering is element-wise lexicographic with a length
        // tiebreak — identical to the old `Vec<i64>` ordering.
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for ChunkCoords {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Matches the old representation: `Vec<i64>` hashes as its slice.
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for ChunkCoords {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ChunkCoords({:?})", self.as_slice())
    }
}

impl std::ops::Index<usize> for ChunkCoords {
    type Output = i64;
    #[inline]
    fn index(&self, d: usize) -> &i64 {
        &self.as_slice()[d]
    }
}

impl std::ops::IndexMut<usize> for ChunkCoords {
    #[inline]
    fn index_mut(&mut self, d: usize) -> &mut i64 {
        &mut self.as_mut_slice()[d]
    }
}

impl<'a> IntoIterator for &'a ChunkCoords {
    type Item = &'a i64;
    type IntoIter = std::slice::Iter<'a, i64>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl fmt::Display for ChunkCoords {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str(")")
    }
}

/// Map a cell coordinate to the chunk containing it, validating bounds.
/// Allocation-free: the result is built inline.
pub fn chunk_of(schema: &ArraySchema, cell: &[i64]) -> Result<ChunkCoords> {
    if cell.len() != schema.ndims() {
        return Err(ArrayError::Arity { expected: schema.ndims(), got: cell.len() });
    }
    let mut out = ChunkCoords::zeros(cell.len());
    for (slot, (dim, &coord)) in
        out.as_mut_slice().iter_mut().zip(schema.dimensions.iter().zip(cell))
    {
        if !dim.contains(coord) {
            return Err(ArrayError::OutOfBounds { dimension: dim.name.clone(), coordinate: coord });
        }
        *slot = dim.chunk_index(coord);
    }
    Ok(out)
}

/// An axis-aligned rectangular region of array space, in cell coordinates
/// (both bounds inclusive). Queries subset arrays with these.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Region {
    /// Inclusive lower corner, one entry per dimension.
    pub low: Vec<i64>,
    /// Inclusive upper corner, one entry per dimension.
    pub high: Vec<i64>,
}

impl Region {
    /// Build a region; panics if the corners disagree in arity.
    pub fn new(low: Vec<i64>, high: Vec<i64>) -> Self {
        assert_eq!(low.len(), high.len(), "region corners must share arity");
        Region { low, high }
    }

    /// The full declared space of a bounded schema.
    pub fn full(schema: &ArraySchema) -> Option<Region> {
        let mut low = Vec::new();
        let mut high = Vec::new();
        for d in &schema.dimensions {
            low.push(d.start);
            high.push(d.end?);
        }
        Some(Region { low, high })
    }

    /// Number of dimensions.
    pub fn ndims(&self) -> usize {
        self.low.len()
    }

    /// Does the region contain the cell coordinate?
    pub fn contains_cell(&self, cell: &[i64]) -> bool {
        cell.len() == self.ndims()
            && cell.iter().enumerate().all(|(d, &c)| c >= self.low[d] && c <= self.high[d])
    }

    /// Does the region intersect the given chunk of `schema`?
    pub fn intersects_chunk(&self, schema: &ArraySchema, chunk: &ChunkCoords) -> bool {
        schema.dimensions.iter().enumerate().all(|(d, dim)| {
            let (lo, hi) = dim.chunk_range(chunk.index(d));
            lo <= self.high[d] && hi >= self.low[d]
        })
    }

    /// Number of cells in the region (logical, not stored).
    pub fn cell_volume(&self) -> u128 {
        self.low.iter().zip(&self.high).map(|(lo, hi)| (hi - lo + 1).max(0) as u128).product()
    }
}

/// Iterate over every chunk coordinate of a bounded schema in row-major
/// order. Returns `None` if any dimension is unbounded.
pub fn all_chunks(schema: &ArraySchema) -> Option<Vec<ChunkCoords>> {
    let counts: Option<Vec<i64>> = schema.dimensions.iter().map(|d| d.chunk_count()).collect();
    let counts = counts?;
    let mut out = Vec::new();
    let n = counts.len();
    let mut cur = ChunkCoords::zeros(n);
    loop {
        out.push(cur);
        let mut d = n;
        loop {
            if d == 0 {
                return Some(out);
            }
            d -= 1;
            cur[d] += 1;
            if cur[d] < counts[d] {
                break;
            }
            cur[d] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttributeDef, DimensionDef};
    use crate::value::AttributeType;

    fn schema_2d() -> ArraySchema {
        ArraySchema::new(
            "A",
            vec![AttributeDef::new("v", AttributeType::Int32)],
            vec![DimensionDef::bounded("x", 1, 4, 2), DimensionDef::bounded("y", 1, 4, 2)],
        )
        .unwrap()
    }

    #[test]
    fn cell_to_chunk_mapping() {
        let s = schema_2d();
        assert_eq!(chunk_of(&s, &[1, 1]).unwrap(), ChunkCoords::new([0, 0]));
        assert_eq!(chunk_of(&s, &[4, 3]).unwrap(), ChunkCoords::new([1, 1]));
        assert!(matches!(chunk_of(&s, &[5, 1]), Err(ArrayError::OutOfBounds { .. })));
        assert!(matches!(chunk_of(&s, &[1]), Err(ArrayError::Arity { .. })));
    }

    #[test]
    fn all_chunks_row_major() {
        let s = schema_2d();
        let chunks = all_chunks(&s).unwrap();
        assert_eq!(
            chunks,
            vec![
                ChunkCoords::new([0, 0]),
                ChunkCoords::new([0, 1]),
                ChunkCoords::new([1, 0]),
                ChunkCoords::new([1, 1]),
            ]
        );
    }

    #[test]
    fn neighbors_clip_to_bounds() {
        let s = schema_2d();
        let corner = ChunkCoords::new([0, 0]);
        let n = corner.neighbors(&s);
        assert_eq!(n.len(), 3); // (0,1), (1,0), (1,1)
        let center_schema = ArraySchema::new(
            "B",
            vec![AttributeDef::new("v", AttributeType::Int32)],
            vec![DimensionDef::bounded("x", 0, 8, 1), DimensionDef::bounded("y", 0, 8, 1)],
        )
        .unwrap();
        let mid = ChunkCoords::new([4, 4]);
        assert_eq!(mid.neighbors(&center_schema).len(), 8);
    }

    #[test]
    fn region_chunk_intersection() {
        let s = schema_2d();
        let r = Region::new(vec![1, 1], vec![2, 2]); // exactly chunk (0,0)
        assert!(r.intersects_chunk(&s, &ChunkCoords::new([0, 0])));
        assert!(!r.intersects_chunk(&s, &ChunkCoords::new([1, 1])));
        assert!(r.contains_cell(&[2, 2]));
        assert!(!r.contains_cell(&[3, 2]));
        assert_eq!(r.cell_volume(), 4);
    }

    #[test]
    fn region_full_of_bounded_schema() {
        let s = schema_2d();
        let r = Region::full(&s).unwrap();
        assert_eq!(r.low, vec![1, 1]);
        assert_eq!(r.high, vec![4, 4]);
        assert_eq!(r.cell_volume(), 16);
    }

    #[test]
    fn chebyshev_distance() {
        let a = ChunkCoords::new([0, 0, 0]);
        let b = ChunkCoords::new([2, -1, 1]);
        assert_eq!(a.chebyshev(&b), 2);
        assert_eq!(a.chebyshev(&a), 0);
    }

    #[test]
    fn inline_representation_is_compact_and_copy() {
        // One cache line: 8 indices + length (+ padding).
        assert!(std::mem::size_of::<ChunkCoords>() <= 72);
        let a = ChunkCoords::new([1, 2, 3]);
        let b = a; // Copy, not move
        assert_eq!(a, b);
    }

    #[test]
    fn eq_ord_hash_ignore_the_inactive_tail() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut a = ChunkCoords::zeros(2);
        a[0] = 5;
        a[1] = 7;
        let b = ChunkCoords::new([5, 7]);
        assert_eq!(a, b);
        assert_eq!(a.cmp(&b), std::cmp::Ordering::Equal);
        let hash = |c: &ChunkCoords| {
            let mut h = DefaultHasher::new();
            c.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
        // Shorter prefixes order first, as Vec<i64> did.
        assert!(ChunkCoords::new([5]) < ChunkCoords::new([5, 0]));
        assert!(ChunkCoords::new([1, 9]) < ChunkCoords::new([2, 0]));
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_dims_panics() {
        let _ = ChunkCoords::new([0i64; MAX_DIMS + 1]);
    }
}
