//! Scalar attribute values and vertically-partitioned column storage.
//!
//! SciDB stores each attribute of a chunk in its own physical column
//! ("vertical partitioning", §2 of the paper). [`AttributeColumn`] mirrors
//! that: one typed, densely packed vector per attribute per chunk.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The scalar types an attribute may declare.
///
/// The set mirrors the types used by the paper's two schemas (`int`,
/// `double`, `float`, `char`, `string`) plus 64-bit integers, which the
/// AIS `ship_id`/`voyageId` values need at scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttributeType {
    /// 32-bit signed integer (`int32` / `int`).
    Int32,
    /// 64-bit signed integer (`int64`).
    Int64,
    /// 32-bit IEEE float (`float`).
    Float,
    /// 64-bit IEEE float (`double`).
    Double,
    /// Single byte character (`char`).
    Char,
    /// Variable-length UTF-8 string (`string`).
    Str,
}

impl AttributeType {
    /// Canonical lower-case name, as written in schema text.
    pub fn name(self) -> &'static str {
        match self {
            AttributeType::Int32 => "int32",
            AttributeType::Int64 => "int64",
            AttributeType::Float => "float",
            AttributeType::Double => "double",
            AttributeType::Char => "char",
            AttributeType::Str => "string",
        }
    }

    /// Parse a schema type token. Accepts SciDB-style aliases (`int`).
    pub fn parse(token: &str) -> Option<Self> {
        match token {
            "int32" | "int" => Some(AttributeType::Int32),
            "int64" | "long" => Some(AttributeType::Int64),
            "float" => Some(AttributeType::Float),
            "double" => Some(AttributeType::Double),
            "char" => Some(AttributeType::Char),
            "string" => Some(AttributeType::Str),
            _ => None,
        }
    }

    /// Width in bytes of one value of this type as stored on disk.
    /// Strings report an average payload width; the actual footprint of a
    /// column is computed from its contents.
    pub fn fixed_width(self) -> usize {
        match self {
            AttributeType::Int32 | AttributeType::Float => 4,
            AttributeType::Int64 | AttributeType::Double => 8,
            AttributeType::Char => 1,
            AttributeType::Str => 16,
        }
    }
}

impl fmt::Display for AttributeType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One scalar attribute value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScalarValue {
    /// 32-bit signed integer.
    Int32(i32),
    /// 64-bit signed integer.
    Int64(i64),
    /// 32-bit float.
    Float(f32),
    /// 64-bit float.
    Double(f64),
    /// Single byte character.
    Char(u8),
    /// UTF-8 string.
    Str(String),
}

impl ScalarValue {
    /// The type of this value.
    pub fn value_type(&self) -> AttributeType {
        match self {
            ScalarValue::Int32(_) => AttributeType::Int32,
            ScalarValue::Int64(_) => AttributeType::Int64,
            ScalarValue::Float(_) => AttributeType::Float,
            ScalarValue::Double(_) => AttributeType::Double,
            ScalarValue::Char(_) => AttributeType::Char,
            ScalarValue::Str(_) => AttributeType::Str,
        }
    }

    /// Best-effort numeric view; strings and chars return `None`.
    /// Used by aggregation operators that treat attributes as measures.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            ScalarValue::Int32(v) => Some(f64::from(*v)),
            ScalarValue::Int64(v) => Some(*v as f64),
            ScalarValue::Float(v) => Some(f64::from(*v)),
            ScalarValue::Double(v) => Some(*v),
            ScalarValue::Char(_) | ScalarValue::Str(_) => None,
        }
    }

    /// On-disk footprint of one value of this type — the per-value
    /// increment the running chunk byte counters are maintained from.
    /// Agrees exactly with [`AttributeColumn::byte_size`] summed over a
    /// column's values.
    pub fn stored_bytes(&self) -> u64 {
        match self {
            ScalarValue::Int32(_) | ScalarValue::Float(_) => 4,
            ScalarValue::Int64(_) | ScalarValue::Double(_) => 8,
            ScalarValue::Char(_) => 1,
            ScalarValue::Str(s) => s.len() as u64 + 4,
        }
    }

    /// Integer view for key attributes (joins, distinct); floats refuse.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            ScalarValue::Int32(v) => Some(i64::from(*v)),
            ScalarValue::Int64(v) => Some(*v),
            ScalarValue::Char(v) => Some(i64::from(*v)),
            ScalarValue::Float(_) | ScalarValue::Double(_) | ScalarValue::Str(_) => None,
        }
    }
}

impl fmt::Display for ScalarValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarValue::Int32(v) => write!(f, "{v}"),
            ScalarValue::Int64(v) => write!(f, "{v}"),
            ScalarValue::Float(v) => write!(f, "{v}"),
            ScalarValue::Double(v) => write!(f, "{v}"),
            ScalarValue::Char(v) => write!(f, "{}", *v as char),
            ScalarValue::Str(v) => f.write_str(v),
        }
    }
}

/// A typed column holding the values of one attribute for every non-empty
/// cell of a chunk, in cell insertion order.
///
/// This is the unit of vertical partitioning: each column's bytes are
/// accounted separately, and queries that touch a subset of attributes
/// scan only those columns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttributeColumn {
    /// Column of `int32` values.
    Int32(Vec<i32>),
    /// Column of `int64` values.
    Int64(Vec<i64>),
    /// Column of `float` values.
    Float(Vec<f32>),
    /// Column of `double` values.
    Double(Vec<f64>),
    /// Column of `char` values.
    Char(Vec<u8>),
    /// Column of `string` values.
    Str(Vec<String>),
}

impl AttributeColumn {
    /// An empty column of the given type.
    pub fn new(ty: AttributeType) -> Self {
        match ty {
            AttributeType::Int32 => AttributeColumn::Int32(Vec::new()),
            AttributeType::Int64 => AttributeColumn::Int64(Vec::new()),
            AttributeType::Float => AttributeColumn::Float(Vec::new()),
            AttributeType::Double => AttributeColumn::Double(Vec::new()),
            AttributeType::Char => AttributeColumn::Char(Vec::new()),
            AttributeType::Str => AttributeColumn::Str(Vec::new()),
        }
    }

    /// The declared type of the column.
    pub fn column_type(&self) -> AttributeType {
        match self {
            AttributeColumn::Int32(_) => AttributeType::Int32,
            AttributeColumn::Int64(_) => AttributeType::Int64,
            AttributeColumn::Float(_) => AttributeType::Float,
            AttributeColumn::Double(_) => AttributeType::Double,
            AttributeColumn::Char(_) => AttributeType::Char,
            AttributeColumn::Str(_) => AttributeType::Str,
        }
    }

    /// Number of values stored.
    pub fn len(&self) -> usize {
        match self {
            AttributeColumn::Int32(v) => v.len(),
            AttributeColumn::Int64(v) => v.len(),
            AttributeColumn::Float(v) => v.len(),
            AttributeColumn::Double(v) => v.len(),
            AttributeColumn::Char(v) => v.len(),
            AttributeColumn::Str(v) => v.len(),
        }
    }

    /// True when no values are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append one value. Fails on type mismatch.
    pub fn push(&mut self, value: ScalarValue) -> Result<(), (AttributeType, AttributeType)> {
        match (self, value) {
            (AttributeColumn::Int32(v), ScalarValue::Int32(x)) => v.push(x),
            (AttributeColumn::Int64(v), ScalarValue::Int64(x)) => v.push(x),
            (AttributeColumn::Float(v), ScalarValue::Float(x)) => v.push(x),
            (AttributeColumn::Double(v), ScalarValue::Double(x)) => v.push(x),
            (AttributeColumn::Char(v), ScalarValue::Char(x)) => v.push(x),
            (AttributeColumn::Str(v), ScalarValue::Str(x)) => v.push(x),
            (col, value) => return Err((col.column_type(), value.value_type())),
        }
        Ok(())
    }

    /// The value at `idx`, boxed back into a [`ScalarValue`].
    pub fn get(&self, idx: usize) -> Option<ScalarValue> {
        match self {
            AttributeColumn::Int32(v) => v.get(idx).copied().map(ScalarValue::Int32),
            AttributeColumn::Int64(v) => v.get(idx).copied().map(ScalarValue::Int64),
            AttributeColumn::Float(v) => v.get(idx).copied().map(ScalarValue::Float),
            AttributeColumn::Double(v) => v.get(idx).copied().map(ScalarValue::Double),
            AttributeColumn::Char(v) => v.get(idx).copied().map(ScalarValue::Char),
            AttributeColumn::Str(v) => v.get(idx).cloned().map(ScalarValue::Str),
        }
    }

    /// Numeric view of the value at `idx` (see [`ScalarValue::as_f64`]).
    pub fn get_f64(&self, idx: usize) -> Option<f64> {
        match self {
            AttributeColumn::Int32(v) => v.get(idx).map(|x| f64::from(*x)),
            AttributeColumn::Int64(v) => v.get(idx).map(|x| *x as f64),
            AttributeColumn::Float(v) => v.get(idx).map(|x| f64::from(*x)),
            AttributeColumn::Double(v) => v.get(idx).copied(),
            AttributeColumn::Char(_) | AttributeColumn::Str(_) => None,
        }
    }

    /// Reserve capacity for `additional` more values.
    pub(crate) fn reserve(&mut self, additional: usize) {
        match self {
            AttributeColumn::Int32(v) => v.reserve(additional),
            AttributeColumn::Int64(v) => v.reserve(additional),
            AttributeColumn::Float(v) => v.reserve(additional),
            AttributeColumn::Double(v) => v.reserve(additional),
            AttributeColumn::Char(v) => v.reserve(additional),
            AttributeColumn::Str(v) => v.reserve(additional),
        }
    }

    /// Move every value of `other` onto the end of this column. Panics
    /// on a type mismatch — the callers merge columns of chunks built
    /// against one schema.
    pub(crate) fn append(&mut self, other: AttributeColumn) {
        match (self, other) {
            (AttributeColumn::Int32(d), AttributeColumn::Int32(mut s)) => d.append(&mut s),
            (AttributeColumn::Int64(d), AttributeColumn::Int64(mut s)) => d.append(&mut s),
            (AttributeColumn::Float(d), AttributeColumn::Float(mut s)) => d.append(&mut s),
            (AttributeColumn::Double(d), AttributeColumn::Double(mut s)) => d.append(&mut s),
            (AttributeColumn::Char(d), AttributeColumn::Char(mut s)) => d.append(&mut s),
            (AttributeColumn::Str(d), AttributeColumn::Str(mut s)) => d.append(&mut s),
            (d, s) => panic!(
                "cannot append a {} column onto a {} column",
                s.column_type(),
                d.column_type()
            ),
        }
    }

    /// On-disk footprint of the column in bytes.
    pub fn byte_size(&self) -> u64 {
        match self {
            AttributeColumn::Int32(v) => (v.len() * 4) as u64,
            AttributeColumn::Int64(v) => (v.len() * 8) as u64,
            AttributeColumn::Float(v) => (v.len() * 4) as u64,
            AttributeColumn::Double(v) => (v.len() * 8) as u64,
            AttributeColumn::Char(v) => v.len() as u64,
            AttributeColumn::Str(v) => v.iter().map(|s| s.len() as u64 + 4).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_parse_roundtrip() {
        for ty in [
            AttributeType::Int32,
            AttributeType::Int64,
            AttributeType::Float,
            AttributeType::Double,
            AttributeType::Char,
            AttributeType::Str,
        ] {
            assert_eq!(AttributeType::parse(ty.name()), Some(ty));
        }
        assert_eq!(AttributeType::parse("int"), Some(AttributeType::Int32));
        assert_eq!(AttributeType::parse("bogus"), None);
    }

    #[test]
    fn column_push_and_get() {
        let mut col = AttributeColumn::new(AttributeType::Double);
        col.push(ScalarValue::Double(1.5)).unwrap();
        col.push(ScalarValue::Double(-2.0)).unwrap();
        assert_eq!(col.len(), 2);
        assert_eq!(col.get(1), Some(ScalarValue::Double(-2.0)));
        assert_eq!(col.get_f64(0), Some(1.5));
        assert_eq!(col.get(2), None);
    }

    #[test]
    fn column_rejects_type_mismatch() {
        let mut col = AttributeColumn::new(AttributeType::Int32);
        let err = col.push(ScalarValue::Double(1.0)).unwrap_err();
        assert_eq!(err, (AttributeType::Int32, AttributeType::Double));
        assert!(col.is_empty());
    }

    #[test]
    fn byte_size_counts_payload() {
        let mut col = AttributeColumn::new(AttributeType::Str);
        col.push(ScalarValue::Str("port".into())).unwrap();
        assert_eq!(col.byte_size(), 4 + 4);
        let mut ints = AttributeColumn::new(AttributeType::Int64);
        ints.push(ScalarValue::Int64(7)).unwrap();
        assert_eq!(ints.byte_size(), 8);
    }

    #[test]
    fn scalar_numeric_views() {
        assert_eq!(ScalarValue::Int32(3).as_f64(), Some(3.0));
        assert_eq!(ScalarValue::Str("x".into()).as_f64(), None);
        assert_eq!(ScalarValue::Int64(9).as_i64(), Some(9));
        assert_eq!(ScalarValue::Double(1.0).as_i64(), None);
    }
}
