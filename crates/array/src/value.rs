//! Scalar attribute values and vertically-partitioned column storage.
//!
//! SciDB stores each attribute of a chunk in its own physical column
//! ("vertical partitioning", §2 of the paper). [`AttributeColumn`] mirrors
//! that: one typed, densely packed vector per attribute per chunk.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// The scalar types an attribute may declare.
///
/// The set mirrors the types used by the paper's two schemas (`int`,
/// `double`, `float`, `char`, `string`) plus 64-bit integers, which the
/// AIS `ship_id`/`voyageId` values need at scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttributeType {
    /// 32-bit signed integer (`int32` / `int`).
    Int32,
    /// 64-bit signed integer (`int64`).
    Int64,
    /// 32-bit IEEE float (`float`).
    Float,
    /// 64-bit IEEE float (`double`).
    Double,
    /// Single byte character (`char`).
    Char,
    /// Variable-length UTF-8 string (`string`).
    Str,
}

impl AttributeType {
    /// Canonical lower-case name, as written in schema text.
    pub fn name(self) -> &'static str {
        match self {
            AttributeType::Int32 => "int32",
            AttributeType::Int64 => "int64",
            AttributeType::Float => "float",
            AttributeType::Double => "double",
            AttributeType::Char => "char",
            AttributeType::Str => "string",
        }
    }

    /// Parse a schema type token. Accepts SciDB-style aliases (`int`).
    pub fn parse(token: &str) -> Option<Self> {
        match token {
            "int32" | "int" => Some(AttributeType::Int32),
            "int64" | "long" => Some(AttributeType::Int64),
            "float" => Some(AttributeType::Float),
            "double" => Some(AttributeType::Double),
            "char" => Some(AttributeType::Char),
            "string" => Some(AttributeType::Str),
            _ => None,
        }
    }

    /// Width in bytes of one value of this type as stored on disk.
    ///
    /// Strings are dictionary-encoded by default ([`StringEncoding`]),
    /// so the per-value width is one `u32` code; the dictionary's own
    /// bytes are stored once per column and amortize toward zero for the
    /// low-cardinality columns the encoding targets. (Before dictionary
    /// encoding this reported a 16 B average payload width, which the
    /// AIS feed's 8–12 B strings already undershot.) The actual footprint
    /// of a column is always computed from its contents.
    pub fn fixed_width(self) -> usize {
        match self {
            AttributeType::Int32 | AttributeType::Float => 4,
            AttributeType::Int64 | AttributeType::Double => 8,
            AttributeType::Char => 1,
            AttributeType::Str => 4,
        }
    }
}

impl fmt::Display for AttributeType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One scalar attribute value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScalarValue {
    /// 32-bit signed integer.
    Int32(i32),
    /// 64-bit signed integer.
    Int64(i64),
    /// 32-bit float.
    Float(f32),
    /// 64-bit float.
    Double(f64),
    /// Single byte character.
    Char(u8),
    /// UTF-8 string.
    Str(String),
}

impl ScalarValue {
    /// The type of this value.
    pub fn value_type(&self) -> AttributeType {
        match self {
            ScalarValue::Int32(_) => AttributeType::Int32,
            ScalarValue::Int64(_) => AttributeType::Int64,
            ScalarValue::Float(_) => AttributeType::Float,
            ScalarValue::Double(_) => AttributeType::Double,
            ScalarValue::Char(_) => AttributeType::Char,
            ScalarValue::Str(_) => AttributeType::Str,
        }
    }

    /// Best-effort numeric view; strings and chars return `None`.
    /// Used by aggregation operators that treat attributes as measures.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            ScalarValue::Int32(v) => Some(f64::from(*v)),
            ScalarValue::Int64(v) => Some(*v as f64),
            ScalarValue::Float(v) => Some(f64::from(*v)),
            ScalarValue::Double(v) => Some(*v),
            ScalarValue::Char(_) | ScalarValue::Str(_) => None,
        }
    }

    /// Integer view for key attributes (joins, distinct); floats refuse.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            ScalarValue::Int32(v) => Some(i64::from(*v)),
            ScalarValue::Int64(v) => Some(*v),
            ScalarValue::Char(v) => Some(i64::from(*v)),
            ScalarValue::Float(_) | ScalarValue::Double(_) | ScalarValue::Str(_) => None,
        }
    }
}

impl fmt::Display for ScalarValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarValue::Int32(v) => write!(f, "{v}"),
            ScalarValue::Int64(v) => write!(f, "{v}"),
            ScalarValue::Float(v) => write!(f, "{v}"),
            ScalarValue::Double(v) => write!(f, "{v}"),
            ScalarValue::Char(v) => write!(f, "{}", *v as char),
            ScalarValue::Str(v) => f.write_str(v),
        }
    }
}

/// Default cardinality cap for dictionary-encoded **chunk** columns: a
/// column that accumulates more distinct strings than this spills to
/// plain per-value storage (`Vec<String>`), where codes would no longer
/// pay for themselves. Generously above the low-cardinality columns the
/// encoding targets (AIS carries 128 distinct receiver ids plus one
/// provenance string).
pub const DEFAULT_DICT_CAP: u32 = 4096;

/// How string-typed attribute columns are physically stored.
///
/// Fixed-width types ignore the encoding; it only selects the
/// representation of `string` attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StringEncoding {
    /// One heap `String` per value (the pre-dictionary representation).
    Plain,
    /// Dictionary encoding: a `u32` code per value plus each distinct
    /// string stored once, spilling to [`StringEncoding::Plain`] when a
    /// column exceeds `cap` distinct strings.
    Dict {
        /// Cardinality cap: the largest dictionary a column will carry.
        cap: u32,
    },
}

impl Default for StringEncoding {
    fn default() -> Self {
        StringEncoding::Dict { cap: DEFAULT_DICT_CAP }
    }
}

impl StringEncoding {
    /// The transport encoding cell *batches* use: dictionary-encoded with
    /// an effectively unbounded cap. Batches are transient (they exist to
    /// move rows into chunks), so spilling them would only forfeit the
    /// fast code-remap scatter; the storage-side cap is applied per chunk
    /// column when the rows are scattered.
    pub fn transport() -> Self {
        StringEncoding::Dict { cap: u32::MAX }
    }
}

/// FNV-1a over the string's bytes: the dictionary's deterministic,
/// allocation-free lookup hash. (64-bit collisions between *different*
/// strings are handled correctly — see [`StringDict::code_of`] — they
/// just fall off the O(1) path.)
fn dict_hash(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// An order-preserving string interner: code `i` is the `i`-th distinct
/// string in first-appearance order, so two columns fed the same value
/// sequence assign identical codes whatever path the rows took.
///
/// The reverse index maps the string's 64-bit hash to its code rather
/// than re-storing the key, so interning `n` distinct strings costs `n`
/// string allocations (the entries themselves) plus amortized map
/// growth — pinned by `tests/alloc_free_routing.rs`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StringDict {
    /// Distinct strings in first-appearance order; `strings[code]` is the
    /// decoded value of `code`.
    strings: Vec<String>,
    /// `hash → first code with that hash`. Derived from `strings`;
    /// excluded from equality.
    index: HashMap<u64, u32>,
    /// Codes whose hash collided with an earlier entry's (vanishingly
    /// rare); scanned linearly after an index hit that mismatches.
    collisions: Vec<u32>,
}

impl PartialEq for StringDict {
    fn eq(&self, other: &Self) -> bool {
        // `index`/`collisions` are caches over `strings`.
        self.strings == other.strings
    }
}

impl StringDict {
    /// An empty dictionary.
    pub fn new() -> Self {
        StringDict::default()
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Decode one code.
    pub fn get(&self, code: u32) -> Option<&str> {
        self.strings.get(code as usize).map(String::as_str)
    }

    /// The code of `s`, if it has been interned.
    pub fn code_of(&self, s: &str) -> Option<u32> {
        let &first = self.index.get(&dict_hash(s))?;
        if self.strings[first as usize] == s {
            return Some(first);
        }
        // A different string owns this hash slot: the one we want, if
        // present, is in the collision list.
        self.collisions.iter().copied().find(|&c| self.strings[c as usize] == s)
    }

    /// Intern `s`, returning its (possibly fresh) code. Clones only on a
    /// miss.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(code) = self.code_of(s) {
            return code;
        }
        self.intern_new(s.to_string())
    }

    /// Intern an owned string, consuming it. Drops the allocation when
    /// the string was already present.
    pub fn intern_owned(&mut self, s: String) -> u32 {
        if let Some(code) = self.code_of(&s) {
            return code;
        }
        self.intern_new(s)
    }

    fn intern_new(&mut self, s: String) -> u32 {
        let code = self.strings.len() as u32;
        match self.index.entry(dict_hash(&s)) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(code);
            }
            std::collections::hash_map::Entry::Occupied(_) => self.collisions.push(code),
        }
        self.strings.push(s);
        code
    }

    /// The distinct strings, in code order.
    pub fn strings(&self) -> &[String] {
        &self.strings
    }

    /// Stored bytes of the dictionary itself: each distinct string's
    /// payload plus a 4 B length prefix, counted **once** per entry.
    pub fn byte_size(&self) -> u64 {
        self.strings.iter().map(|s| s.len() as u64 + 4).sum()
    }
}

/// A dictionary-encoded string column: one `u32` code per value plus the
/// column's own [`StringDict`]. Codes are order-preserving (first
/// appearance wins), so equal value sequences produce structurally equal
/// columns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DictColumn {
    /// One code per stored value, in insertion order.
    codes: Vec<u32>,
    /// The column's dictionary.
    dict: StringDict,
    /// Cardinality cap: interning a `cap + 1`-th distinct string spills
    /// the whole column to plain storage.
    cap: u32,
}

impl DictColumn {
    /// An empty dictionary column with the given cardinality cap.
    pub fn with_cap(cap: u32) -> Self {
        DictColumn { codes: Vec::new(), dict: StringDict::new(), cap }
    }

    /// Number of stored values.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when no values are stored.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Decode the value at `idx`.
    pub fn get(&self, idx: usize) -> Option<&str> {
        self.codes.get(idx).and_then(|&c| self.dict.get(c))
    }

    /// The raw code column.
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// The column's dictionary.
    pub fn dict(&self) -> &StringDict {
        &self.dict
    }

    /// The cardinality cap this column spills at.
    pub fn cap(&self) -> u32 {
        self.cap
    }

    /// Stored bytes: the dictionary once plus 4 B per code.
    pub fn byte_size(&self) -> u64 {
        self.dict.byte_size() + 4 * self.codes.len() as u64
    }

    /// Append one value, interning it. `Err` returns the string untouched
    /// when storing it would exceed the cardinality cap — the caller
    /// spills the column to plain storage. `Ok` carries the byte delta
    /// (4 for a repeat, `4 + len + 4` when a dictionary entry was added).
    fn try_push(&mut self, s: String) -> std::result::Result<i64, String> {
        if let Some(code) = self.dict.code_of(&s) {
            self.codes.push(code);
            return Ok(4);
        }
        if self.dict.len() >= self.cap as usize {
            return Err(s);
        }
        let added = s.len() as i64 + 4;
        let code = self.dict.intern_owned(s);
        self.codes.push(code);
        Ok(added + 4)
    }

    /// Pre-seed the dictionary with a string known to be absent — the
    /// batch scatter builds each chunk's dictionary in first-seen row
    /// order before scattering any codes.
    pub(crate) fn intern_in_order(&mut self, s: &str) {
        debug_assert!(self.dict.code_of(s).is_none(), "intern_in_order on a present string");
        self.dict.intern(s);
    }

    /// Mutable access to the raw code column (the batch scatter appends
    /// pre-remapped codes directly).
    pub(crate) fn codes_mut(&mut self) -> &mut Vec<u32> {
        &mut self.codes
    }

    /// Decode every value into plain per-value storage (the spill
    /// conversion).
    fn decode_all(&self) -> Vec<String> {
        self.codes
            .iter()
            .map(|&c| self.dict.get(c).expect("codes index the dictionary").to_string())
            .collect()
    }
}

/// A typed column holding the values of one attribute for every non-empty
/// cell of a chunk, in cell insertion order.
///
/// This is the unit of vertical partitioning: each column's bytes are
/// accounted separately, and queries that touch a subset of attributes
/// scan only those columns. String columns come in two physical
/// representations (see [`StringEncoding`]): plain per-value storage
/// ([`AttributeColumn::Str`]) and dictionary encoding
/// ([`AttributeColumn::Dict`]); both report
/// [`AttributeType::Str`] as their logical type and decode to identical
/// [`ScalarValue`]s, so query operators are encoding-blind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttributeColumn {
    /// Column of `int32` values.
    Int32(Vec<i32>),
    /// Column of `int64` values.
    Int64(Vec<i64>),
    /// Column of `float` values.
    Float(Vec<f32>),
    /// Column of `double` values.
    Double(Vec<f64>),
    /// Column of `char` values.
    Char(Vec<u8>),
    /// Column of `string` values, one heap `String` per value (plain
    /// encoding, and the spill target past the dictionary cap).
    Str(Vec<String>),
    /// Column of dictionary-encoded `string` values.
    Dict(DictColumn),
}

impl AttributeColumn {
    /// An empty column of the given type under the **default** encoding:
    /// string columns are dictionary-encoded with
    /// [`DEFAULT_DICT_CAP`].
    pub fn new(ty: AttributeType) -> Self {
        Self::with_encoding(ty, StringEncoding::default())
    }

    /// An empty column of the given type; `encoding` selects the physical
    /// representation of string columns and is ignored for fixed-width
    /// types.
    pub fn with_encoding(ty: AttributeType, encoding: StringEncoding) -> Self {
        match ty {
            AttributeType::Int32 => AttributeColumn::Int32(Vec::new()),
            AttributeType::Int64 => AttributeColumn::Int64(Vec::new()),
            AttributeType::Float => AttributeColumn::Float(Vec::new()),
            AttributeType::Double => AttributeColumn::Double(Vec::new()),
            AttributeType::Char => AttributeColumn::Char(Vec::new()),
            AttributeType::Str => match encoding {
                StringEncoding::Plain => AttributeColumn::Str(Vec::new()),
                StringEncoding::Dict { cap } => AttributeColumn::Dict(DictColumn::with_cap(cap)),
            },
        }
    }

    /// The declared type of the column.
    pub fn column_type(&self) -> AttributeType {
        match self {
            AttributeColumn::Int32(_) => AttributeType::Int32,
            AttributeColumn::Int64(_) => AttributeType::Int64,
            AttributeColumn::Float(_) => AttributeType::Float,
            AttributeColumn::Double(_) => AttributeType::Double,
            AttributeColumn::Char(_) => AttributeType::Char,
            AttributeColumn::Str(_) | AttributeColumn::Dict(_) => AttributeType::Str,
        }
    }

    /// Number of values stored.
    pub fn len(&self) -> usize {
        match self {
            AttributeColumn::Int32(v) => v.len(),
            AttributeColumn::Int64(v) => v.len(),
            AttributeColumn::Float(v) => v.len(),
            AttributeColumn::Double(v) => v.len(),
            AttributeColumn::Char(v) => v.len(),
            AttributeColumn::Str(v) => v.len(),
            AttributeColumn::Dict(d) => d.len(),
        }
    }

    /// True when no values are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append one value. Fails on type mismatch. `Ok` carries the
    /// column's byte-size delta — the increment the running chunk byte
    /// counters are maintained from. The delta is negative only when a
    /// dictionary column spills to plain storage and the dropped
    /// per-value codes outweighed the duplicated dictionary payloads.
    pub fn push(&mut self, value: ScalarValue) -> Result<i64, (AttributeType, AttributeType)> {
        if let ScalarValue::Str(x) = value {
            return if self.column_type() == AttributeType::Str {
                Ok(self.push_str(x))
            } else {
                Err((self.column_type(), AttributeType::Str))
            };
        }
        let delta = match (&mut *self, value) {
            (AttributeColumn::Int32(v), ScalarValue::Int32(x)) => {
                v.push(x);
                4
            }
            (AttributeColumn::Int64(v), ScalarValue::Int64(x)) => {
                v.push(x);
                8
            }
            (AttributeColumn::Float(v), ScalarValue::Float(x)) => {
                v.push(x);
                4
            }
            (AttributeColumn::Double(v), ScalarValue::Double(x)) => {
                v.push(x);
                8
            }
            (AttributeColumn::Char(v), ScalarValue::Char(x)) => {
                v.push(x);
                1
            }
            (col, value) => return Err((col.column_type(), value.value_type())),
        };
        Ok(delta)
    }

    /// Append one string to a string-typed column, interning it when the
    /// column is dictionary-encoded and spilling the column to plain
    /// storage when the dictionary would exceed its cardinality cap.
    /// Returns the column's byte-size delta (which includes the spill
    /// conversion, when one happens).
    ///
    /// # Panics
    ///
    /// If the column is not string-typed — callers validate types first.
    pub(crate) fn push_str(&mut self, s: String) -> i64 {
        if let AttributeColumn::Dict(d) = self {
            match d.try_push(s) {
                Ok(delta) => return delta,
                Err(s) => {
                    // Cardinality cap exceeded: decode the whole column
                    // into plain storage, then store the new value there.
                    let old = d.byte_size() as i64;
                    let mut plain = d.decode_all();
                    plain.push(s);
                    let new: i64 = plain.iter().map(|x| x.len() as i64 + 4).sum();
                    *self = AttributeColumn::Str(plain);
                    return new - old;
                }
            }
        }
        match self {
            AttributeColumn::Str(v) => {
                let delta = s.len() as i64 + 4;
                v.push(s);
                delta
            }
            _ => panic!("push_str on a {} column", self.column_type()),
        }
    }

    /// The value at `idx`, boxed back into a [`ScalarValue`]. Dictionary
    /// codes decode here — this is the result-boundary accessor.
    pub fn get(&self, idx: usize) -> Option<ScalarValue> {
        match self {
            AttributeColumn::Int32(v) => v.get(idx).copied().map(ScalarValue::Int32),
            AttributeColumn::Int64(v) => v.get(idx).copied().map(ScalarValue::Int64),
            AttributeColumn::Float(v) => v.get(idx).copied().map(ScalarValue::Float),
            AttributeColumn::Double(v) => v.get(idx).copied().map(ScalarValue::Double),
            AttributeColumn::Char(v) => v.get(idx).copied().map(ScalarValue::Char),
            AttributeColumn::Str(v) => v.get(idx).cloned().map(ScalarValue::Str),
            AttributeColumn::Dict(d) => d.get(idx).map(|s| ScalarValue::Str(s.to_string())),
        }
    }

    /// Zero-copy view of the string at `idx`; `None` for non-string
    /// columns (and out-of-range rows). Operators that scan string
    /// columns read through this without materializing per-row clones.
    pub fn get_str(&self, idx: usize) -> Option<&str> {
        match self {
            AttributeColumn::Str(v) => v.get(idx).map(String::as_str),
            AttributeColumn::Dict(d) => d.get(idx),
            _ => None,
        }
    }

    /// Numeric view of the value at `idx` (see [`ScalarValue::as_f64`]).
    pub fn get_f64(&self, idx: usize) -> Option<f64> {
        match self {
            AttributeColumn::Int32(v) => v.get(idx).map(|x| f64::from(*x)),
            AttributeColumn::Int64(v) => v.get(idx).map(|x| *x as f64),
            AttributeColumn::Float(v) => v.get(idx).map(|x| f64::from(*x)),
            AttributeColumn::Double(v) => v.get(idx).copied(),
            AttributeColumn::Char(_) | AttributeColumn::Str(_) | AttributeColumn::Dict(_) => None,
        }
    }

    /// The physical representation of a string-typed column; `None` for
    /// fixed-width types.
    pub fn string_encoding(&self) -> Option<StringEncoding> {
        match self {
            AttributeColumn::Str(_) => Some(StringEncoding::Plain),
            AttributeColumn::Dict(d) => Some(StringEncoding::Dict { cap: d.cap }),
            _ => None,
        }
    }

    /// The dictionary column, when this column is dictionary-encoded.
    pub fn as_dict(&self) -> Option<&DictColumn> {
        match self {
            AttributeColumn::Dict(d) => Some(d),
            _ => None,
        }
    }

    /// Reserve capacity for `additional` more values.
    pub(crate) fn reserve(&mut self, additional: usize) {
        match self {
            AttributeColumn::Int32(v) => v.reserve(additional),
            AttributeColumn::Int64(v) => v.reserve(additional),
            AttributeColumn::Float(v) => v.reserve(additional),
            AttributeColumn::Double(v) => v.reserve(additional),
            AttributeColumn::Char(v) => v.reserve(additional),
            AttributeColumn::Str(v) => v.reserve(additional),
            AttributeColumn::Dict(d) => d.codes.reserve(additional),
        }
    }

    /// Move every value of `other` onto the end of this column,
    /// returning this column's byte-size delta. Panics on a type
    /// mismatch — the callers merge columns of chunks built against one
    /// schema.
    ///
    /// String columns merge across representations: appending a
    /// dictionary column **remaps its codes** through this column's
    /// dictionary (row order preserved, so the merged column equals the
    /// one sequential insertion would have built), spilling to plain if
    /// the union's cardinality crosses the cap; plain values append into
    /// a dictionary column by interning, and dictionary values into a
    /// plain column by decoding.
    pub(crate) fn append(&mut self, other: AttributeColumn) -> i64 {
        if self.column_type() == AttributeType::Str && other.column_type() == AttributeType::Str {
            return match other {
                AttributeColumn::Str(mut vals) => {
                    if let AttributeColumn::Str(d) = self {
                        let delta: i64 = vals.iter().map(|x| x.len() as i64 + 4).sum();
                        d.append(&mut vals);
                        delta
                    } else {
                        // Plain source into a dictionary column: intern
                        // row-wise (spill handled by `push_str`).
                        vals.drain(..).map(|s| self.push_str(s)).sum()
                    }
                }
                AttributeColumn::Dict(src) => self.append_dict(src),
                _ => unreachable!("column_type() said Str"),
            };
        }
        match (&mut *self, other) {
            (AttributeColumn::Int32(d), AttributeColumn::Int32(mut s)) => {
                let delta = (s.len() * 4) as i64;
                d.append(&mut s);
                delta
            }
            (AttributeColumn::Int64(d), AttributeColumn::Int64(mut s)) => {
                let delta = (s.len() * 8) as i64;
                d.append(&mut s);
                delta
            }
            (AttributeColumn::Float(d), AttributeColumn::Float(mut s)) => {
                let delta = (s.len() * 4) as i64;
                d.append(&mut s);
                delta
            }
            (AttributeColumn::Double(d), AttributeColumn::Double(mut s)) => {
                let delta = (s.len() * 8) as i64;
                d.append(&mut s);
                delta
            }
            (AttributeColumn::Char(d), AttributeColumn::Char(mut s)) => {
                let delta = s.len() as i64;
                d.append(&mut s);
                delta
            }
            (d, s) => panic!(
                "cannot append a {} column onto a {} column",
                s.column_type(),
                d.column_type()
            ),
        }
    }

    /// The dictionary-source half of [`AttributeColumn::append`]: remap
    /// `src`'s codes through this column's dictionary with a flat
    /// `src code → dst code` table (no per-row hashing while both sides
    /// stay dictionaries), falling back to row-wise decoded pushes from
    /// the first row that spills this column — identical to sequential
    /// insertion either way.
    fn append_dict(&mut self, src: DictColumn) -> i64 {
        let mut delta = 0i64;
        let mut resume = None;
        if let AttributeColumn::Dict(dst) = &mut *self {
            let mut remap = vec![u32::MAX; src.dict.len()];
            for (i, &code) in src.codes.iter().enumerate() {
                let mapped = remap[code as usize];
                if mapped != u32::MAX {
                    dst.codes.push(mapped);
                    delta += 4;
                    continue;
                }
                let s = src.dict.get(code).expect("codes index the dictionary");
                if let Some(c) = dst.dict.code_of(s) {
                    remap[code as usize] = c;
                    dst.codes.push(c);
                    delta += 4;
                } else if dst.dict.len() < dst.cap as usize {
                    let c = dst.dict.intern(s);
                    remap[code as usize] = c;
                    dst.codes.push(c);
                    delta += 4 + s.len() as i64 + 4;
                } else {
                    // The union crosses the cap at this row: spill (via
                    // push_str below) and finish decoded.
                    resume = Some(i);
                    break;
                }
            }
        } else {
            resume = Some(0);
        }
        if let Some(start) = resume {
            for &code in &src.codes[start..] {
                let s = src.dict.get(code).expect("codes index the dictionary").to_string();
                delta += self.push_str(s);
            }
        }
        delta
    }

    /// Stored bytes attributable to the value at `idx` **alone** — the
    /// exact amount a chunk's running byte counter decrements when the
    /// row is tombstoned. Fixed-width types cost their width; plain
    /// strings their payload plus the 4 B length prefix; dictionary
    /// codes 4 B. A tombstoned row's dictionary *entry* is not charged
    /// here: other rows may still reference it, so its bytes are
    /// reclaimed only when [`compact`] rebuilds the column (deferred
    /// compaction).
    ///
    /// [`compact`]: crate::Chunk::compact
    pub fn row_byte_cost(&self, idx: usize) -> Option<u64> {
        match self {
            AttributeColumn::Int32(v) => v.get(idx).map(|_| 4),
            AttributeColumn::Int64(v) => v.get(idx).map(|_| 8),
            AttributeColumn::Float(v) => v.get(idx).map(|_| 4),
            AttributeColumn::Double(v) => v.get(idx).map(|_| 8),
            AttributeColumn::Char(v) => v.get(idx).map(|_| 1),
            AttributeColumn::Str(v) => v.get(idx).map(|s| s.len() as u64 + 4),
            AttributeColumn::Dict(d) => d.codes().get(idx).map(|_| 4),
        }
    }

    /// On-disk footprint of the column in bytes. Dictionary columns count
    /// the dictionary once plus 4 B per code.
    pub fn byte_size(&self) -> u64 {
        match self {
            AttributeColumn::Int32(v) => (v.len() * 4) as u64,
            AttributeColumn::Int64(v) => (v.len() * 8) as u64,
            AttributeColumn::Float(v) => (v.len() * 4) as u64,
            AttributeColumn::Double(v) => (v.len() * 8) as u64,
            AttributeColumn::Char(v) => v.len() as u64,
            AttributeColumn::Str(v) => v.iter().map(|s| s.len() as u64 + 4).sum(),
            AttributeColumn::Dict(d) => d.byte_size(),
        }
    }
}

// ---------------------------------------------------------------------
// Durable codecs. Encodings are structural and bit-exact: floats travel
// as raw bit patterns, dictionaries as their strings in code order (the
// hash index and collision list are deterministic functions of that
// order, so re-interning reproduces them exactly).
// ---------------------------------------------------------------------

use durability::{ByteReader, ByteWriter, CodecError};

impl ScalarValue {
    /// Serialize as a one-byte type tag plus the payload.
    pub fn encode_into(&self, w: &mut ByteWriter) {
        match self {
            ScalarValue::Int32(v) => {
                w.put_u8(0);
                w.put_u32(*v as u32);
            }
            ScalarValue::Int64(v) => {
                w.put_u8(1);
                w.put_i64(*v);
            }
            ScalarValue::Float(v) => {
                w.put_u8(2);
                w.put_u32(v.to_bits());
            }
            ScalarValue::Double(v) => {
                w.put_u8(3);
                w.put_f64(*v);
            }
            ScalarValue::Char(v) => {
                w.put_u8(4);
                w.put_u8(*v);
            }
            ScalarValue::Str(v) => {
                w.put_u8(5);
                w.put_str(v);
            }
        }
    }

    /// Decode a value written by [`ScalarValue::encode_into`].
    pub fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(match r.u8("scalar tag")? {
            0 => ScalarValue::Int32(r.u32("int32 value")? as i32),
            1 => ScalarValue::Int64(r.i64("int64 value")?),
            2 => ScalarValue::Float(f32::from_bits(r.u32("float bits")?)),
            3 => ScalarValue::Double(r.f64("double value")?),
            4 => ScalarValue::Char(r.u8("char value")?),
            5 => ScalarValue::Str(r.str("string value")?),
            t => {
                return Err(CodecError::Invalid {
                    context: "scalar tag",
                    detail: format!("unknown tag {t}"),
                })
            }
        })
    }
}

impl StringEncoding {
    /// Serialize as a tag byte (0 = plain, 1 = dict + cap).
    pub fn encode_into(&self, w: &mut ByteWriter) {
        match self {
            StringEncoding::Plain => w.put_u8(0),
            StringEncoding::Dict { cap } => {
                w.put_u8(1);
                w.put_u32(*cap);
            }
        }
    }

    /// Decode an encoding written by [`StringEncoding::encode_into`].
    pub fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        match r.u8("string encoding tag")? {
            0 => Ok(StringEncoding::Plain),
            1 => Ok(StringEncoding::Dict { cap: r.u32("dict cap")? }),
            t => Err(CodecError::Invalid {
                context: "string encoding tag",
                detail: format!("unknown tag {t}"),
            }),
        }
    }
}

impl StringDict {
    fn encode_into(&self, w: &mut ByteWriter) {
        w.put_usize(self.strings.len());
        for s in &self.strings {
            w.put_str(s);
        }
    }

    /// Rebuild by re-interning in code order. The original dictionary was
    /// built first-appearance order too, so the hash index and collision
    /// list come out identical, not merely equivalent.
    fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let n = r.usize("dict entry count")?;
        let mut dict = StringDict::new();
        for _ in 0..n {
            let s = r.str("dict entry")?;
            if dict.code_of(&s).is_some() {
                return Err(CodecError::Invalid {
                    context: "dict entry",
                    detail: format!("duplicate interned string {s:?}"),
                });
            }
            dict.intern_new(s);
        }
        Ok(dict)
    }
}

impl DictColumn {
    fn encode_into(&self, w: &mut ByteWriter) {
        w.put_u32(self.cap);
        self.dict.encode_into(w);
        w.put_usize(self.codes.len());
        for &c in &self.codes {
            w.put_u32(c);
        }
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let cap = r.u32("dict cap")?;
        let dict = StringDict::decode_from(r)?;
        let n = r.usize("dict code count")?;
        let mut codes = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let c = r.u32("dict code")?;
            if c as usize >= dict.len() {
                return Err(CodecError::Invalid {
                    context: "dict code",
                    detail: format!("code {c} out of range for {} entries", dict.len()),
                });
            }
            codes.push(c);
        }
        Ok(DictColumn { codes, dict, cap })
    }
}

impl AttributeColumn {
    /// Serialize as a one-byte representation tag plus the packed values.
    pub fn encode_into(&self, w: &mut ByteWriter) {
        match self {
            AttributeColumn::Int32(v) => {
                w.put_u8(0);
                w.put_usize(v.len());
                for &x in v {
                    w.put_u32(x as u32);
                }
            }
            AttributeColumn::Int64(v) => {
                w.put_u8(1);
                w.put_usize(v.len());
                for &x in v {
                    w.put_i64(x);
                }
            }
            AttributeColumn::Float(v) => {
                w.put_u8(2);
                w.put_usize(v.len());
                for &x in v {
                    w.put_u32(x.to_bits());
                }
            }
            AttributeColumn::Double(v) => {
                w.put_u8(3);
                w.put_usize(v.len());
                for &x in v {
                    w.put_f64(x);
                }
            }
            AttributeColumn::Char(v) => {
                w.put_u8(4);
                w.put_bytes(v);
            }
            AttributeColumn::Str(v) => {
                w.put_u8(5);
                w.put_usize(v.len());
                for x in v {
                    w.put_str(x);
                }
            }
            AttributeColumn::Dict(d) => {
                w.put_u8(6);
                d.encode_into(w);
            }
        }
    }

    /// Decode a column written by [`AttributeColumn::encode_into`]. The
    /// physical representation (plain vs dict, spilled or not) round-trips
    /// exactly — recovery must not re-encode columns differently than the
    /// crashed process stored them.
    pub fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(match r.u8("column tag")? {
            0 => {
                let n = r.usize("int32 column len")?;
                let mut v = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    v.push(r.u32("int32 cell")? as i32);
                }
                AttributeColumn::Int32(v)
            }
            1 => {
                let n = r.usize("int64 column len")?;
                let mut v = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    v.push(r.i64("int64 cell")?);
                }
                AttributeColumn::Int64(v)
            }
            2 => {
                let n = r.usize("float column len")?;
                let mut v = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    v.push(f32::from_bits(r.u32("float cell")?));
                }
                AttributeColumn::Float(v)
            }
            3 => {
                let n = r.usize("double column len")?;
                let mut v = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    v.push(r.f64("double cell")?);
                }
                AttributeColumn::Double(v)
            }
            4 => AttributeColumn::Char(r.bytes("char column")?.to_vec()),
            5 => {
                let n = r.usize("string column len")?;
                let mut v = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    v.push(r.str("string cell")?);
                }
                AttributeColumn::Str(v)
            }
            6 => AttributeColumn::Dict(DictColumn::decode_from(r)?),
            t => {
                return Err(CodecError::Invalid {
                    context: "column tag",
                    detail: format!("unknown tag {t}"),
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_parse_roundtrip() {
        for ty in [
            AttributeType::Int32,
            AttributeType::Int64,
            AttributeType::Float,
            AttributeType::Double,
            AttributeType::Char,
            AttributeType::Str,
        ] {
            assert_eq!(AttributeType::parse(ty.name()), Some(ty));
        }
        assert_eq!(AttributeType::parse("int"), Some(AttributeType::Int32));
        assert_eq!(AttributeType::parse("bogus"), None);
    }

    #[test]
    fn column_push_and_get() {
        let mut col = AttributeColumn::new(AttributeType::Double);
        col.push(ScalarValue::Double(1.5)).unwrap();
        col.push(ScalarValue::Double(-2.0)).unwrap();
        assert_eq!(col.len(), 2);
        assert_eq!(col.get(1), Some(ScalarValue::Double(-2.0)));
        assert_eq!(col.get_f64(0), Some(1.5));
        assert_eq!(col.get(2), None);
    }

    #[test]
    fn column_rejects_type_mismatch() {
        let mut col = AttributeColumn::new(AttributeType::Int32);
        let err = col.push(ScalarValue::Double(1.0)).unwrap_err();
        assert_eq!(err, (AttributeType::Int32, AttributeType::Double));
        assert!(col.is_empty());
    }

    #[test]
    fn byte_size_counts_payload() {
        // Default encoding: strings dictionary-encode — each distinct
        // string once (len + 4) plus a 4 B code per value.
        let mut col = AttributeColumn::new(AttributeType::Str);
        assert_eq!(col.push(ScalarValue::Str("port".into())).unwrap(), (4 + 4) + 4);
        assert_eq!(col.byte_size(), (4 + 4) + 4);
        assert_eq!(col.push(ScalarValue::Str("port".into())).unwrap(), 4);
        assert_eq!(col.byte_size(), (4 + 4) + 2 * 4);
        // Plain encoding: every value stores its own payload.
        let mut plain = AttributeColumn::with_encoding(AttributeType::Str, StringEncoding::Plain);
        plain.push(ScalarValue::Str("port".into())).unwrap();
        plain.push(ScalarValue::Str("port".into())).unwrap();
        assert_eq!(plain.byte_size(), 2 * (4 + 4));
        let mut ints = AttributeColumn::new(AttributeType::Int64);
        assert_eq!(ints.push(ScalarValue::Int64(7)).unwrap(), 8);
        assert_eq!(ints.byte_size(), 8);
    }

    #[test]
    fn dict_column_interns_and_decodes() {
        let mut col = AttributeColumn::with_encoding(
            AttributeType::Str,
            StringEncoding::Dict { cap: DEFAULT_DICT_CAP },
        );
        for s in ["a", "b", "a", "", "b"] {
            col.push(ScalarValue::Str(s.into())).unwrap();
        }
        let d = col.as_dict().expect("under the cap stays dictionary-encoded");
        assert_eq!(d.codes(), &[0, 1, 0, 2, 1]);
        assert_eq!(d.dict().strings(), &["a".to_string(), "b".into(), "".into()]);
        assert_eq!(col.get(3), Some(ScalarValue::Str(String::new())));
        assert_eq!(col.get_str(4), Some("b"));
        assert_eq!(col.get(5), None);
        assert_eq!(col.len(), 5);
        // Dictionary bytes once (1+4, 1+4, 0+4) plus 4 B per code.
        assert_eq!(col.byte_size(), (5 + 5 + 4) + 5 * 4);
    }

    #[test]
    fn dict_column_spills_past_the_cap() {
        let mut col =
            AttributeColumn::with_encoding(AttributeType::Str, StringEncoding::Dict { cap: 2 });
        col.push(ScalarValue::Str("x".into())).unwrap();
        col.push(ScalarValue::Str("y".into())).unwrap();
        col.push(ScalarValue::Str("x".into())).unwrap();
        let before = col.byte_size() as i64;
        // The third distinct string crosses cap = 2: the column converts
        // to plain storage, and the delta accounts for the conversion.
        let delta = col.push(ScalarValue::Str("z".into())).unwrap();
        assert!(col.as_dict().is_none(), "column must have spilled to plain");
        assert_eq!(col.byte_size() as i64, before + delta);
        assert_eq!(col.byte_size(), 4 * (1 + 4));
        let got: Vec<_> = (0..4).map(|i| col.get_str(i).unwrap().to_string()).collect();
        assert_eq!(got, ["x", "y", "x", "z"]);
        // Further pushes stay plain.
        assert_eq!(col.push(ScalarValue::Str("w".into())).unwrap(), 1 + 4);
        assert_eq!(col.len(), 5);
    }

    #[test]
    fn append_remaps_codes_across_dictionaries() {
        let mk = |vals: &[&str], cap: u32| {
            let mut c =
                AttributeColumn::with_encoding(AttributeType::Str, StringEncoding::Dict { cap });
            for v in vals {
                c.push(ScalarValue::Str((*v).into())).unwrap();
            }
            c
        };
        // Overlapping dictionaries with different code assignments.
        let mut dst = mk(&["a", "b"], 16);
        let src = mk(&["c", "b", "c"], 16);
        let before = dst.byte_size() as i64;
        let delta = dst.append(src);
        assert_eq!(dst.byte_size() as i64, before + delta);
        let d = dst.as_dict().unwrap();
        assert_eq!(d.dict().strings(), &["a".to_string(), "b".into(), "c".into()]);
        assert_eq!(d.codes(), &[0, 1, 2, 1, 2]);
        // Sequential insertion builds the identical column.
        assert_eq!(dst, mk(&["a", "b", "c", "b", "c"], 16));

        // A union that crosses the cap spills mid-append, identically to
        // sequential insertion.
        let mut tight = mk(&["a", "b"], 2);
        let delta = tight.append(mk(&["b", "c"], 16));
        assert!(tight.as_dict().is_none());
        assert_eq!(tight, {
            let mut seq = mk(&["a", "b", "b"], 2);
            seq.push(ScalarValue::Str("c".into())).unwrap();
            seq
        });
        assert_eq!(tight.byte_size() as i64, mk(&["a", "b"], 2).byte_size() as i64 + delta);

        // Cross-representation merges: plain into dict, dict into plain.
        let mut dict_dst = mk(&["a"], 16);
        let mut plain = AttributeColumn::with_encoding(AttributeType::Str, StringEncoding::Plain);
        plain.push(ScalarValue::Str("b".into())).unwrap();
        dict_dst.append(plain.clone());
        assert_eq!(dict_dst, mk(&["a", "b"], 16));
        let pre = plain.byte_size() as i64;
        let delta = plain.append(mk(&["c", "c"], 16));
        assert_eq!(plain.byte_size() as i64, pre + delta);
        assert_eq!(plain.get_str(1), Some("c"));
        assert_eq!(plain.get_str(2), Some("c"));
        assert!(plain.as_dict().is_none());
    }

    #[test]
    fn scalar_numeric_views() {
        assert_eq!(ScalarValue::Int32(3).as_f64(), Some(3.0));
        assert_eq!(ScalarValue::Str("x".into()).as_f64(), None);
        assert_eq!(ScalarValue::Int64(9).as_i64(), Some(9));
        assert_eq!(ScalarValue::Double(1.0).as_i64(), None);
    }
}
