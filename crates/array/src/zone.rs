//! Per-chunk zone maps: the scan layer's pruning metadata.
//!
//! A [`ZoneMap`] rides on every [`Chunk`](crate::chunk::Chunk) and
//! summarizes the chunk's **live** cells: a min/max bounding box per
//! dimension plus per-attribute statistics (min/max for numeric columns,
//! NaN counts for floats, distinct counts for dictionary columns). Query
//! operators consult it to skip whole chunks whose summary *refutes* a
//! region or predicate before the payload is touched.
//!
//! # Invariants
//!
//! The zone map is **conservative**: it always covers at least the live
//! cells of its chunk. Concretely:
//!
//! * **Fresh builds are tight.** `scatter_cells`, `push_cells`, and
//!   `compact` compute the map canonically from the surviving rows, so a
//!   freshly built or freshly compacted chunk has an exact summary.
//! * **Appends merge.** Merging two canonical maps equals the canonical
//!   map of the union (min/max folds are order-independent under a total
//!   order), so incrementally grown chunks match batch-built ones —
//!   zone maps participate in `Chunk`'s derived `PartialEq`, and the
//!   differential suites' structural-equality checks enforce this
//!   path-independence.
//! * **Retractions leave the map stale-but-conservative.** Tombstoning a
//!   row never shrinks the box — shrinking would require a rescan — so a
//!   heavily retracted chunk may carry a loose summary. That is safe
//!   (pruning only ever *skips* chunks the map refutes; a loose map just
//!   prunes less) and `compact` restores tightness when tombstones are
//!   collected.
//! * **Serialized with the chunk.** The durability codecs carry the map
//!   verbatim, so recovery neither rescans payloads nor loses pruning
//!   power, and the codec-idempotence tests cover it.
//!
//! Numeric folds use [`f64::total_cmp`] so `-0.0`/`0.0` resolve
//! deterministically; NaN cells are **counted, not folded** — a column of
//! NaNs has an empty (refute-everything) value range plus a nonzero
//! `nans` count, which keeps range pruning sound because no ordered
//! comparison matches NaN anyway.

use crate::coords::Region;
use crate::value::AttributeColumn;
use crate::ScalarValue;
use serde::{Deserialize, Serialize};

/// Live-cell bounds for one dimension. An empty chunk is represented by
/// the inverted range `min > max`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DimZone {
    /// Smallest live coordinate observed on this dimension.
    pub min: i64,
    /// Largest live coordinate observed on this dimension.
    pub max: i64,
}

impl DimZone {
    /// The empty (inverted) range.
    pub fn empty() -> Self {
        DimZone { min: i64::MAX, max: i64::MIN }
    }

    /// True when no coordinate has been observed.
    pub fn is_empty(&self) -> bool {
        self.min > self.max
    }

    fn observe(&mut self, v: i64) {
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    fn merge(&mut self, other: &DimZone) {
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Per-attribute zone statistics, shaped by the column's physical
/// representation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttrZone {
    /// Integer-valued columns (`int32`, `int64`, `char`): exact min/max.
    /// Empty is the inverted range `min > max`.
    Int {
        /// Smallest live value.
        min: i64,
        /// Largest live value.
        max: i64,
    },
    /// Floating-point columns (`float`, `double`): min/max over the
    /// non-NaN values (folded with `total_cmp`, so `-0.0 < 0.0`), plus a
    /// count of NaN cells. Empty is `min = +inf, max = -inf`.
    Real {
        /// Smallest live non-NaN value.
        min: f64,
        /// Largest live non-NaN value.
        max: f64,
        /// Number of NaN cells observed.
        nans: u64,
    },
    /// Dictionary-encoded string columns: the dictionary's cardinality.
    /// Valid codes are exactly `0..distinct`, so this doubles as the
    /// code range; membership itself is answered by probing the
    /// dictionary, which the scan layer does per chunk.
    Dict {
        /// Number of distinct strings in the chunk dictionary.
        distinct: u32,
    },
    /// Plain string columns: no summary (never refutes).
    Str,
}

impl AttrZone {
    /// The empty zone for a column's physical representation.
    fn empty_for(col: &AttributeColumn) -> Self {
        match col {
            AttributeColumn::Int32(_) | AttributeColumn::Int64(_) | AttributeColumn::Char(_) => {
                AttrZone::Int { min: i64::MAX, max: i64::MIN }
            }
            AttributeColumn::Float(_) | AttributeColumn::Double(_) => {
                AttrZone::Real { min: f64::INFINITY, max: f64::NEG_INFINITY, nans: 0 }
            }
            AttributeColumn::Dict(d) => AttrZone::Dict { distinct: d.dict().len() as u32 },
            AttributeColumn::Str(_) => AttrZone::Str,
        }
    }

    fn observe_i64(&mut self, v: i64) {
        if let AttrZone::Int { min, max } = self {
            *min = (*min).min(v);
            *max = (*max).max(v);
        } else {
            debug_assert!(false, "integer value observed by non-Int zone");
        }
    }

    fn observe_f64(&mut self, v: f64) {
        if let AttrZone::Real { min, max, nans } = self {
            if v.is_nan() {
                *nans += 1;
            } else {
                if v.total_cmp(min).is_lt() {
                    *min = v;
                }
                if v.total_cmp(max).is_gt() {
                    *max = v;
                }
            }
        } else {
            debug_assert!(false, "float value observed by non-Real zone");
        }
    }

    fn merge(&mut self, other: &AttrZone) {
        match (self, other) {
            (AttrZone::Int { min, max }, AttrZone::Int { min: omin, max: omax }) => {
                *min = (*min).min(*omin);
                *max = (*max).max(*omax);
            }
            (
                AttrZone::Real { min, max, nans },
                AttrZone::Real { min: omin, max: omax, nans: onans },
            ) => {
                if omin.total_cmp(min).is_lt() {
                    *min = *omin;
                }
                if omax.total_cmp(max).is_gt() {
                    *max = *omax;
                }
                *nans += *onans;
            }
            // String representations are refreshed from the merged column
            // by `sync_strings` (a dict append can spill to plain), and a
            // spilled/unspilled pair has nothing numeric to fold.
            _ => {}
        }
    }
}

/// Zone map for one chunk: per-dimension bounds plus per-attribute stats,
/// in schema order. See the module docs for the invariants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZoneMap {
    dims: Vec<DimZone>,
    attrs: Vec<AttrZone>,
}

impl ZoneMap {
    /// The empty map shaped for `ndims` dimensions and the given columns.
    pub(crate) fn empty_for(ndims: usize, columns: &[AttributeColumn]) -> Self {
        ZoneMap {
            dims: vec![DimZone::empty(); ndims],
            attrs: columns.iter().map(AttrZone::empty_for).collect(),
        }
    }

    /// Canonical map of a tombstone-free chunk state: fold every row of
    /// the flat coordinate buffer and every column.
    pub(crate) fn compute(ndims: usize, flat_coords: &[i64], columns: &[AttributeColumn]) -> Self {
        let mut zone = ZoneMap::empty_for(ndims, columns);
        if ndims > 0 {
            for row in flat_coords.chunks_exact(ndims) {
                for (d, &c) in row.iter().enumerate() {
                    zone.dims[d].observe(c);
                }
            }
        }
        for (zone, col) in zone.attrs.iter_mut().zip(columns) {
            match col {
                AttributeColumn::Int32(v) => v.iter().for_each(|&x| zone.observe_i64(i64::from(x))),
                AttributeColumn::Int64(v) => v.iter().for_each(|&x| zone.observe_i64(x)),
                AttributeColumn::Char(v) => v.iter().for_each(|&x| zone.observe_i64(i64::from(x))),
                AttributeColumn::Float(v) => v.iter().for_each(|&x| zone.observe_f64(f64::from(x))),
                AttributeColumn::Double(v) => v.iter().for_each(|&x| zone.observe_f64(x)),
                // Dict/Str summaries come from `empty_for` (cardinality /
                // nothing) and need no per-row fold.
                AttributeColumn::Dict(_) | AttributeColumn::Str(_) => {}
            }
        }
        zone
    }

    /// Fold one incoming cell (coordinates + schema-order values) into
    /// the map. String values are skipped here; callers follow up with
    /// [`ZoneMap::sync_strings`] after the row lands, because the push
    /// may change the column's representation (dictionary spill).
    pub(crate) fn observe_cell(&mut self, cell: &[i64], values: &[ScalarValue]) {
        debug_assert_eq!(cell.len(), self.dims.len());
        debug_assert_eq!(values.len(), self.attrs.len());
        for (zone, &c) in self.dims.iter_mut().zip(cell) {
            zone.observe(c);
        }
        for (zone, value) in self.attrs.iter_mut().zip(values) {
            match value {
                ScalarValue::Int32(v) => zone.observe_i64(i64::from(*v)),
                ScalarValue::Int64(v) => zone.observe_i64(*v),
                ScalarValue::Char(v) => zone.observe_i64(i64::from(*v)),
                ScalarValue::Float(v) => zone.observe_f64(f64::from(*v)),
                ScalarValue::Double(v) => zone.observe_f64(*v),
                ScalarValue::Str(_) => {}
            }
        }
    }

    /// Merge another chunk's map into this one (numeric dimensions and
    /// attributes only). Callers follow up with [`ZoneMap::sync_strings`]
    /// on the merged columns, since appending can spill a dictionary.
    pub(crate) fn merge(&mut self, other: &ZoneMap) {
        debug_assert_eq!(self.dims.len(), other.dims.len());
        debug_assert_eq!(self.attrs.len(), other.attrs.len());
        for (zone, ozone) in self.dims.iter_mut().zip(&other.dims) {
            zone.merge(ozone);
        }
        for (zone, ozone) in self.attrs.iter_mut().zip(&other.attrs) {
            zone.merge(ozone);
        }
    }

    /// Refresh the string-column summaries from the columns' current
    /// representation: dictionary cardinalities move, and a capped
    /// dictionary can spill to plain strings mid-push or mid-append.
    pub(crate) fn sync_strings(&mut self, columns: &[AttributeColumn]) {
        debug_assert_eq!(self.attrs.len(), columns.len());
        for (zone, col) in self.attrs.iter_mut().zip(columns) {
            match col {
                AttributeColumn::Dict(d) => {
                    *zone = AttrZone::Dict { distinct: d.dict().len() as u32 }
                }
                AttributeColumn::Str(_) => *zone = AttrZone::Str,
                _ => {}
            }
        }
    }

    /// Per-dimension bounds, in schema order.
    pub fn dims(&self) -> &[DimZone] {
        &self.dims
    }

    /// Per-attribute statistics, in schema order.
    pub fn attrs(&self) -> &[AttrZone] {
        &self.attrs
    }

    /// The statistics for attribute `idx`, if in range.
    pub fn attr(&self, idx: usize) -> Option<&AttrZone> {
        self.attrs.get(idx)
    }

    /// True when no cell has ever been observed (every dimension range is
    /// inverted). Note the converse does not hold after retractions: a
    /// chunk whose live cells were all tombstoned keeps a non-empty map.
    pub fn is_empty(&self) -> bool {
        self.dims.iter().all(DimZone::is_empty)
    }

    /// True when the bounding box provably misses `region`: some
    /// dimension's live range and the region's range are disjoint. A
    /// refuted chunk contains no live cell inside the region (the box
    /// covers all live cells), so scans may skip it without changing any
    /// answer. `region` must have the map's arity.
    pub fn refutes_region(&self, region: &Region) -> bool {
        debug_assert_eq!(region.ndims(), self.dims.len());
        self.dims
            .iter()
            .zip(region.low.iter().zip(&region.high))
            .any(|(z, (&lo, &hi))| z.is_empty() || z.max < lo || z.min > hi)
    }

    /// True when the bounding box lies entirely inside `region` **on
    /// dimension `d`** — every live cell passes that dimension's range
    /// test, so a scan may skip it. Sound even when the box is stale:
    /// stale boxes are supersets of the live cells.
    pub fn dim_within(&self, d: usize, low: i64, high: i64) -> bool {
        let z = &self.dims[d];
        !z.is_empty() && z.min >= low && z.max <= high
    }
}

// ---------------------------------------------------------------------
// Durable codec (see crates/durability): length-prefixed dims + tagged
// attrs, appended to the chunk codec so checkpointed payloads keep their
// pruning power across recovery.
// ---------------------------------------------------------------------

use durability::{ByteReader, ByteWriter, CodecError};

const TAG_INT: u8 = 0;
const TAG_REAL: u8 = 1;
const TAG_DICT: u8 = 2;
const TAG_STR: u8 = 3;

impl ZoneMap {
    /// Serialize the map.
    pub fn encode_into(&self, w: &mut ByteWriter) {
        w.put_usize(self.dims.len());
        for d in &self.dims {
            w.put_i64(d.min);
            w.put_i64(d.max);
        }
        w.put_usize(self.attrs.len());
        for a in &self.attrs {
            match a {
                AttrZone::Int { min, max } => {
                    w.put_u8(TAG_INT);
                    w.put_i64(*min);
                    w.put_i64(*max);
                }
                AttrZone::Real { min, max, nans } => {
                    w.put_u8(TAG_REAL);
                    w.put_f64(*min);
                    w.put_f64(*max);
                    w.put_u64(*nans);
                }
                AttrZone::Dict { distinct } => {
                    w.put_u8(TAG_DICT);
                    w.put_u32(*distinct);
                }
                AttrZone::Str => w.put_u8(TAG_STR),
            }
        }
    }

    /// Decode a map written by [`ZoneMap::encode_into`].
    pub fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let ndims = r.usize("zone map dim count")?;
        let mut dims = Vec::with_capacity(ndims.min(crate::coords::MAX_DIMS));
        for _ in 0..ndims {
            let min = r.i64("zone map dim min")?;
            let max = r.i64("zone map dim max")?;
            dims.push(DimZone { min, max });
        }
        let nattrs = r.usize("zone map attr count")?;
        let mut attrs = Vec::with_capacity(nattrs.min(64));
        for _ in 0..nattrs {
            let tag = r.u8("zone map attr tag")?;
            attrs.push(match tag {
                TAG_INT => {
                    let min = r.i64("zone map int min")?;
                    let max = r.i64("zone map int max")?;
                    AttrZone::Int { min, max }
                }
                TAG_REAL => {
                    let min = r.f64("zone map real min")?;
                    let max = r.f64("zone map real max")?;
                    let nans = r.u64("zone map nan count")?;
                    AttrZone::Real { min, max, nans }
                }
                TAG_DICT => AttrZone::Dict { distinct: r.u32("zone map dict distinct")? },
                TAG_STR => AttrZone::Str,
                other => {
                    return Err(CodecError::Invalid {
                        context: "zone map attr tag",
                        detail: format!("unknown tag {other}"),
                    })
                }
            });
        }
        Ok(ZoneMap { dims, attrs })
    }

    /// Shape/variant agreement check used by the chunk decoder: the map
    /// must have one `DimZone` per dimension and one `AttrZone` per
    /// column, with each zone variant matching its column's physical
    /// representation.
    pub(crate) fn validate_shape(
        &self,
        ndims: usize,
        columns: &[AttributeColumn],
    ) -> Result<(), String> {
        if self.dims.len() != ndims {
            return Err(format!("{} dim zones for {ndims} dimensions", self.dims.len()));
        }
        if self.attrs.len() != columns.len() {
            return Err(format!("{} attr zones for {} columns", self.attrs.len(), columns.len()));
        }
        for (i, (zone, col)) in self.attrs.iter().zip(columns).enumerate() {
            let ok = matches!(
                (zone, col),
                (
                    AttrZone::Int { .. },
                    AttributeColumn::Int32(_)
                        | AttributeColumn::Int64(_)
                        | AttributeColumn::Char(_)
                ) | (AttrZone::Real { .. }, AttributeColumn::Float(_) | AttributeColumn::Double(_))
                    | (AttrZone::Dict { .. }, AttributeColumn::Dict(_))
                    | (AttrZone::Str, AttributeColumn::Str(_))
            );
            if !ok {
                return Err(format!("attr zone {i} does not match its column representation"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zone_of(cols: &[AttributeColumn], coords: &[i64], nd: usize) -> ZoneMap {
        ZoneMap::compute(nd, coords, cols)
    }

    #[test]
    fn compute_folds_dims_and_attrs() {
        let cols = vec![
            AttributeColumn::Int64(vec![5, -3, 9]),
            AttributeColumn::Double(vec![1.5, f64::NAN, -0.5]),
        ];
        let z = zone_of(&cols, &[0, 10, 4, 2, 9, 7], 2);
        assert_eq!(z.dims(), &[DimZone { min: 0, max: 9 }, DimZone { min: 2, max: 10 }]);
        assert_eq!(z.attr(0), Some(&AttrZone::Int { min: -3, max: 9 }));
        assert_eq!(z.attr(1), Some(&AttrZone::Real { min: -0.5, max: 1.5, nans: 1 }));
    }

    #[test]
    fn signed_zero_folds_deterministically() {
        let cols = vec![AttributeColumn::Double(vec![0.0, -0.0])];
        let z = zone_of(&cols, &[0, 1], 1);
        let AttrZone::Real { min, max, nans } = z.attr(0).unwrap() else { panic!("real zone") };
        assert_eq!(min.to_bits(), (-0.0f64).to_bits());
        assert_eq!(max.to_bits(), 0.0f64.to_bits());
        assert_eq!(*nans, 0);
        // Observation order must not matter.
        let rev = zone_of(&[AttributeColumn::Double(vec![-0.0, 0.0])], &[0, 1], 1);
        assert_eq!(z, rev);
    }

    #[test]
    fn merge_of_canonical_maps_is_canonical_map_of_union() {
        let a = zone_of(&[AttributeColumn::Double(vec![1.0, f64::NAN])], &[3, 8], 1);
        let b = zone_of(&[AttributeColumn::Double(vec![-2.0, 5.0])], &[1, 6], 1);
        let mut merged = a.clone();
        merged.merge(&b);
        let union =
            zone_of(&[AttributeColumn::Double(vec![1.0, f64::NAN, -2.0, 5.0])], &[3, 8, 1, 6], 1);
        assert_eq!(merged, union);
    }

    #[test]
    fn empty_zone_refutes_everything() {
        let z = ZoneMap::empty_for(2, &[]);
        assert!(z.is_empty());
        assert!(z.refutes_region(&Region::new(vec![i64::MIN, i64::MIN], vec![i64::MAX, i64::MAX])));
    }

    #[test]
    fn region_refutation_is_per_dimension_disjointness() {
        let z = zone_of(&[], &[2, 5, 4, 9], 2);
        // Box is x in [2,4], y in [5,9].
        assert!(!z.refutes_region(&Region::new(vec![0, 0], vec![10, 10])));
        assert!(z.refutes_region(&Region::new(vec![5, 0], vec![10, 10])));
        assert!(z.refutes_region(&Region::new(vec![0, 0], vec![10, 4])));
        assert!(z.dim_within(0, 2, 4));
        assert!(!z.dim_within(0, 3, 10));
    }

    #[test]
    fn codec_round_trips_and_rejects_prefixes_and_bad_tags() {
        let cols = vec![
            AttributeColumn::Int32(vec![1, 2]),
            AttributeColumn::Double(vec![0.5, f64::NAN]),
            AttributeColumn::Str(vec!["a".into(), "b".into()]),
        ];
        let z = zone_of(&cols, &[0, 7], 1);
        let mut w = ByteWriter::new();
        z.encode_into(&mut w);
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        let back = ZoneMap::decode_from(&mut r).expect("round trip");
        r.finish("zone map").expect("fully consumed");
        assert_eq!(z, back);
        let mut w2 = ByteWriter::new();
        back.encode_into(&mut w2);
        assert_eq!(bytes, w2.into_bytes(), "codec not idempotent");

        for cut in (0..bytes.len()).step_by(3) {
            let mut r = ByteReader::new(&bytes[..cut]);
            let _ = ZoneMap::decode_from(&mut r).and_then(|_| r.finish("zone map")).unwrap_err();
        }

        let mut bad = bytes.clone();
        let tag_pos = bytes.len() - (1 + 8 + 8 + 8) - (1 + 8 + 8) - 1;
        bad[tag_pos + 1 + 8 + 8] = 9; // corrupt the Real tag into an unknown one
        let mut r = ByteReader::new(&bad);
        assert!(ZoneMap::decode_from(&mut r).is_err());
    }

    #[test]
    fn validate_shape_rejects_mismatches() {
        let cols = vec![AttributeColumn::Int32(vec![1])];
        let z = ZoneMap::compute(1, &[0], &cols);
        assert!(z.validate_shape(1, &cols).is_ok());
        assert!(z.validate_shape(2, &cols).is_err());
        assert!(z.validate_shape(1, &[]).is_err());
        let float_col = vec![AttributeColumn::Double(vec![1.0])];
        assert!(z.validate_shape(1, &float_col).is_err());
    }
}
