//! Logical change sets: the Δ a cycle applies to one array.
//!
//! A [`DeltaSet`] is a Z-set over logical rows — each [`RowDelta`] is a
//! cell's coordinates and attribute values with a signed multiplicity
//! (`+1` insert, `-1` retraction). Inserts are extracted from the
//! freshly built per-cycle arrays ([`DeltaSet::from_live_cells`]);
//! retractions are captured at the tombstone choke point
//! ([`Array::delete_cells_capturing`]) before storage is reclaimed.
//! Downstream consumers (the query crate's incremental views) fold
//! deltas in O(|Δ|), never rescanning the base array — so the transport
//! here is deliberately *logical*: rebalances, failovers, and chunk
//! compactions move bytes around without producing any delta at all.
//!
//! [`Array::delete_cells_capturing`]: crate::Array::delete_cells_capturing

use crate::array::Array;
use crate::value::ScalarValue;

/// One logical row change: cell coordinates, attribute values, and a
/// signed multiplicity (Z-set weight).
#[derive(Debug, Clone, PartialEq)]
pub struct RowDelta {
    /// The cell's dimension coordinates.
    pub coords: Vec<i64>,
    /// The cell's attribute values, in schema order.
    pub values: Vec<ScalarValue>,
    /// Signed multiplicity: `+1` per insert, `-1` per retraction.
    pub weight: i64,
}

/// An ordered collection of [`RowDelta`]s for one array — the logical
/// change one cycle step produced. Order is deterministic (capture
/// order), which incremental consumers rely on for bit-identical float
/// folds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeltaSet {
    rows: Vec<RowDelta>,
}

impl DeltaSet {
    /// An empty delta.
    pub fn new() -> Self {
        DeltaSet::default()
    }

    /// Append one row change.
    pub fn push(&mut self, coords: Vec<i64>, values: Vec<ScalarValue>, weight: i64) {
        self.rows.push(RowDelta { coords, values, weight });
    }

    /// The row changes, in capture order.
    pub fn rows(&self) -> &[RowDelta] {
        &self.rows
    }

    /// Number of row changes carried (counting multiplicities as 1 each).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no changes are carried.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Net weight: inserts minus retractions.
    pub fn net_weight(&self) -> i64 {
        self.rows.iter().map(|r| r.weight).sum()
    }

    /// Every live cell of `array` as a `+1` delta, in row-major chunk
    /// order and insertion order within each chunk. Two uses: turning a
    /// cycle's freshly built insert arrays into their Δ, and feeding a
    /// from-scratch recompute of a view from the catalog's oracle copy —
    /// both walk cells in the same deterministic order, which is what
    /// makes incremental-vs-recompute comparisons bit-exact.
    pub fn from_live_cells(array: &Array) -> Self {
        let mut delta = DeltaSet::new();
        for (_, chunk) in array.shared_chunks() {
            for (cell, row) in chunk.iter_cells() {
                delta.push(cell.to_vec(), chunk.row_values(row).expect("live rows have values"), 1);
            }
        }
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::ArrayId;
    use crate::schema::ArraySchema;

    fn sample() -> Array {
        let schema = ArraySchema::parse("D<v:double, s:string>[x=0:*,4]").unwrap();
        let mut a = Array::new(ArrayId(7), schema);
        for i in 0..10i64 {
            a.insert_cell(
                vec![i],
                vec![ScalarValue::Double(i as f64 * 1.5), ScalarValue::Str(format!("s{}", i % 3))],
            )
            .unwrap();
        }
        a
    }

    #[test]
    fn live_cell_extraction_is_exhaustive_and_ordered() {
        let a = sample();
        let d = DeltaSet::from_live_cells(&a);
        assert_eq!(d.len(), 10);
        assert_eq!(d.net_weight(), 10);
        let xs: Vec<i64> = d.rows().iter().map(|r| r.coords[0]).collect();
        assert_eq!(xs, (0..10).collect::<Vec<_>>());
        assert_eq!(d.rows()[3].values[0], ScalarValue::Double(4.5));
        assert_eq!(d.rows()[4].values[1], ScalarValue::Str("s1".into()));
    }

    #[test]
    fn capturing_delete_reports_the_retracted_values() {
        let mut a = sample();
        let mut captured = DeltaSet::new();
        let out = a
            .delete_cells_capturing(&[3, 7, 99], |cell, values| {
                captured.push(cell.to_vec(), values, -1)
            })
            .unwrap();
        assert_eq!(out.retracted, 2);
        assert_eq!(out.missing, 1);
        assert_eq!(captured.len(), 2);
        assert_eq!(captured.net_weight(), -2);
        assert_eq!(captured.rows()[0].coords, vec![3]);
        assert_eq!(captured.rows()[0].values[0], ScalarValue::Double(4.5));
        assert_eq!(captured.rows()[1].values[1], ScalarValue::Str("s1".into()));
        // Tombstoned cells don't reappear in a later extraction.
        assert_eq!(DeltaSet::from_live_cells(&a).len(), 8);
    }

    #[test]
    fn per_chunk_compaction_is_threshold_ready() {
        let mut a = sample();
        a.delete_cells(&[0, 1, 2]).unwrap(); // chunk [0]: 3 of 4 rows dead
        let coords = crate::coords::chunk_of(&a.schema, &[0]).unwrap();
        let chunk = a.chunk(&coords).unwrap();
        assert_eq!(chunk.tombstone_count(), 3);
        let reclaimed = a.compact_chunk(&coords).expect("tombstones present");
        assert!(reclaimed > 0);
        let chunk = a.chunk(&coords).unwrap();
        assert_eq!(chunk.tombstone_count(), 0);
        assert_eq!(chunk.cell_count(), 1);
        // Vacant or clean positions decline.
        assert_eq!(a.compact_chunk(&coords), None);
    }
}
