//! Hilbert space-filling curves over chunk space.
//!
//! Two implementations back the paper's Hilbert Curve partitioner (§4.2):
//!
//! * [`hilbert_index`] / [`hilbert_coords`] — John Skilling's transposed-bit
//!   algorithm ("Programming the Hilbert curve", AIP 2004) for n-dimensional
//!   power-of-two cubes. Chunk coordinates are embedded into the smallest
//!   cube that covers the grid; the curve then serializes chunks so that
//!   neighbours on the curve are Euclidean neighbours in array space.
//! * [`gilbert2d`] — a generalized pseudo-Hilbert scan for *arbitrary*
//!   rectangles (the paper's citation [32]): every point is visited exactly
//!   once with no power-of-two padding, every step stays within Chebyshev
//!   distance 1, and at most one step per rectangle is diagonal (rectangles
//!   with certain odd extents cannot be scanned with 4-adjacent steps
//!   alone; the pseudo-Hilbert formulation accepts a single corner-cut).
//!
//! [`HilbertOrder`] wraps the n-d index for a specific schema and is what
//! the partitioner uses as its total order over chunk coordinates.

use crate::coords::ChunkCoords;
use crate::schema::ArraySchema;

/// Maximum bits per dimension such that an n-d index fits in `u128`.
fn max_bits_for(ndims: usize) -> u32 {
    (128 / ndims.max(1) as u32).min(32)
}

/// Scratch capacity covering every practical dimensionality without heap
/// allocation. `bits * n <= 128` with `bits >= 2` bounds `n` at 64; the
/// degenerate `bits == 1` case can reach 128 dimensions and falls back to
/// a heap buffer.
const INLINE_DIMS: usize = 16;

/// Map `coords` in a `[0, 2^bits)^n` cube to its Hilbert index.
///
/// Allocation-free for up to [`MAX_DIMS`](crate::coords::MAX_DIMS) (and
/// beyond, up to 16) dimensions: the working copy lives on the stack.
///
/// Panics if `bits * coords.len() > 128` or any coordinate overflows the
/// cube — callers clamp first (see [`HilbertOrder`]).
pub fn hilbert_index(coords: &[u64], bits: u32) -> u128 {
    let n = coords.len();
    assert!(n >= 1, "need at least one coordinate");
    assert!(bits as usize * n <= 128, "index would overflow u128");
    for &c in coords {
        assert!(bits == 64 || c < (1u64 << bits), "coordinate outside cube");
    }
    let mut stack = [0u64; INLINE_DIMS];
    let mut heap: Vec<u64>;
    let x: &mut [u64] = if n <= INLINE_DIMS {
        stack[..n].copy_from_slice(coords);
        &mut stack[..n]
    } else {
        heap = coords.to_vec();
        &mut heap
    };

    // --- Skilling: axes -> transposed Hilbert coordinates ---
    if bits >= 2 {
        let m: u64 = 1 << (bits - 1);
        let mut q = m;
        while q > 1 {
            let p = q - 1;
            for i in 0..n {
                if x[i] & q != 0 {
                    x[0] ^= p;
                } else {
                    let t = (x[0] ^ x[i]) & p;
                    x[0] ^= t;
                    x[i] ^= t;
                }
            }
            q >>= 1;
        }
        for i in 1..n {
            x[i] ^= x[i - 1];
        }
        let mut t: u64 = 0;
        q = m;
        while q > 1 {
            if x[n - 1] & q != 0 {
                t ^= q - 1;
            }
            q >>= 1;
        }
        for xi in x.iter_mut() {
            *xi ^= t;
        }
    }

    // --- interleave transposed form into a single integer ---
    let mut h: u128 = 0;
    for k in (0..bits).rev() {
        for xi in x.iter().take(n) {
            h = (h << 1) | u128::from((xi >> k) & 1);
        }
    }
    h
}

/// Inverse of [`hilbert_index`]: recover coordinates from an index.
pub fn hilbert_coords(index: u128, bits: u32, ndims: usize) -> Vec<u64> {
    assert!(ndims >= 1, "need at least one coordinate");
    assert!(bits as usize * ndims <= 128, "index would overflow u128");
    // de-interleave into transposed form
    let mut x = vec![0u64; ndims];
    let total = bits as usize * ndims;
    for pos in 0..total {
        let bit = (index >> (total - 1 - pos)) & 1;
        let k = bits - 1 - (pos / ndims) as u32;
        let j = pos % ndims;
        x[j] |= (bit as u64) << k;
    }

    if bits >= 2 {
        // Gray decode
        let t = x[ndims - 1] >> 1;
        for i in (1..ndims).rev() {
            x[i] ^= x[i - 1];
        }
        x[0] ^= t;
        // Undo excess work: q = 2, 4, ..., 2^(bits-1). A counted loop with
        // a wrapping shift, because the former `while q != 1 << bits` exit
        // test overflowed the shift at bits == 64 (the full-width cube).
        let mut q: u64 = 2;
        for _ in 0..bits - 1 {
            let p = q - 1;
            for i in (0..ndims).rev() {
                if x[i] & q != 0 {
                    x[0] ^= p;
                } else {
                    let t = (x[0] ^ x[i]) & p;
                    x[0] ^= t;
                    x[i] ^= t;
                }
            }
            q = q.wrapping_shl(1);
        }
    }
    x
}

/// Generate the generalized pseudo-Hilbert traversal of a
/// `width × height` rectangle. Every point appears exactly once; every
/// step moves to a Chebyshev-adjacent cell, and at most one step in the
/// whole traversal is diagonal (only for certain odd-extent shapes).
pub fn gilbert2d(width: i64, height: i64) -> Vec<(i64, i64)> {
    let mut out = Vec::with_capacity((width * height).max(0) as usize);
    if width <= 0 || height <= 0 {
        return out;
    }
    if width >= height {
        generate(0, 0, width, 0, 0, height, &mut out);
    } else {
        generate(0, 0, 0, height, width, 0, &mut out);
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn generate(x: i64, y: i64, ax: i64, ay: i64, bx: i64, by: i64, out: &mut Vec<(i64, i64)>) {
    let w = (ax + ay).abs();
    let h = (bx + by).abs();
    let (dax, day) = (ax.signum(), ay.signum());
    let (dbx, dby) = (bx.signum(), by.signum());

    if h == 1 {
        let (mut cx, mut cy) = (x, y);
        for _ in 0..w {
            out.push((cx, cy));
            cx += dax;
            cy += day;
        }
        return;
    }
    if w == 1 {
        let (mut cx, mut cy) = (x, y);
        for _ in 0..h {
            out.push((cx, cy));
            cx += dbx;
            cy += dby;
        }
        return;
    }

    // Floor division: the third recursive case passes negated direction
    // vectors, and truncating-toward-zero halving would misplace their
    // split points (caught by the property tests at e.g. 25x6).
    let (mut ax2, mut ay2) = (ax.div_euclid(2), ay.div_euclid(2));
    let (mut bx2, mut by2) = (bx.div_euclid(2), by.div_euclid(2));
    let w2 = (ax2 + ay2).abs();
    let h2 = (bx2 + by2).abs();

    if 2 * w > 3 * h {
        if w2 % 2 != 0 && w > 2 {
            ax2 += dax;
            ay2 += day;
        }
        generate(x, y, ax2, ay2, bx, by, out);
        generate(x + ax2, y + ay2, ax - ax2, ay - ay2, bx, by, out);
    } else {
        if h2 % 2 != 0 && h > 2 {
            bx2 += dbx;
            by2 += dby;
        }
        generate(x, y, bx2, by2, ax2, ay2, out);
        generate(x + bx2, y + by2, ax, ay, bx - bx2, by - by2, out);
        generate(
            x + (ax - dax) + (bx2 - dbx),
            y + (ay - day) + (by2 - dby),
            -bx2,
            -by2,
            -(ax - ax2),
            -(ay - ay2),
            out,
        );
    }
}

/// A ready-to-use Hilbert total order over the chunk coordinates of one
/// schema. Handles unbounded dimensions by sizing the embedding cube from
/// a caller-provided bound (default 2^16 chunks along unbounded dims).
#[derive(Debug, Clone)]
pub struct HilbertOrder {
    bits: u32,
    ndims: usize,
}

impl HilbertOrder {
    /// Build an order for `schema`. `unbounded_hint` caps the chunk count
    /// assumed along unbounded dimensions (e.g. expected days of data).
    pub fn for_schema(schema: &ArraySchema, unbounded_hint: u64) -> Self {
        let extents: Vec<u64> = schema
            .dimensions
            .iter()
            .map(|d| d.chunk_count().map_or(unbounded_hint.max(2), |c| c as u64))
            .collect();
        Self::from_extents(&extents)
    }

    /// Build an order directly from per-dimension chunk counts.
    pub fn from_extents(extents: &[u64]) -> Self {
        assert!(!extents.is_empty(), "need at least one dimension");
        let need = extents.iter().copied().max().unwrap_or(2).max(2);
        let mut bits = 64 - (need - 1).leading_zeros();
        bits = bits.clamp(1, max_bits_for(extents.len()));
        HilbertOrder { bits, ndims: extents.len() }
    }

    /// The highest index the embedding cube can produce, plus one.
    pub fn index_space(&self) -> u128 {
        1u128 << (self.bits as usize * self.ndims)
    }

    /// Bits per dimension of the embedding cube.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The Hilbert index of a chunk coordinate. Coordinates beyond the
    /// embedding cube are clamped to its face — orders remain total and
    /// deterministic even if the hint was exceeded. Allocation-free.
    pub fn index_of(&self, coords: &ChunkCoords) -> u128 {
        debug_assert_eq!(coords.ndims(), self.ndims);
        let limit = if self.bits == 64 { u64::MAX } else { (1u64 << self.bits) - 1 };
        let mut cube = [0u64; crate::coords::MAX_DIMS];
        for (slot, &c) in cube.iter_mut().zip(coords.iter()) {
            *slot = (c.max(0) as u64).min(limit);
        }
        hilbert_index(&cube[..coords.ndims()], self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ArraySchema, AttributeDef, DimensionDef};
    use crate::value::AttributeType;
    use std::collections::HashSet;

    #[test]
    fn index_is_bijective_on_small_cubes() {
        for (ndims, bits) in [(2usize, 3u32), (3, 2)] {
            let side = 1u64 << bits;
            let total = side.pow(ndims as u32);
            let mut seen = HashSet::new();
            let mut coords = vec![0u64; ndims];
            for _ in 0..total {
                let h = hilbert_index(&coords, bits);
                assert!(h < u128::from(total));
                assert!(seen.insert(h), "duplicate index {h} for {coords:?}");
                assert_eq!(hilbert_coords(h, bits, ndims), coords, "inverse mismatch");
                // odometer
                for c in coords.iter_mut() {
                    *c += 1;
                    if *c < side {
                        break;
                    }
                    *c = 0;
                }
            }
            assert_eq!(seen.len() as u64, total);
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn consecutive_indices_are_adjacent_cells() {
        let bits = 3;
        let side = 1i64 << bits;
        for ndims in [2usize, 3] {
            let total = (side as u128).pow(ndims as u32);
            let mut prev: Option<Vec<u64>> = None;
            for h in 0..total {
                let c = hilbert_coords(h, bits, ndims);
                if let Some(p) = prev {
                    let dist: i64 =
                        c.iter().zip(&p).map(|(a, b)| (*a as i64 - *b as i64).abs()).sum();
                    assert_eq!(dist, 1, "curve jumped at h={h}");
                }
                prev = Some(c);
            }
        }
    }

    #[test]
    fn known_2d_order_for_2x2() {
        // The 2x2 Hilbert curve visits (0,0),(0,1),(1,1),(1,0) or a rotation;
        // verify it is a Hamiltonian path of adjacent cells starting at 0.
        let pts: Vec<Vec<u64>> = (0..4).map(|h| hilbert_coords(h, 1, 2)).collect();
        assert_eq!(pts[0], vec![0, 0]);
        let set: HashSet<_> = pts.iter().cloned().collect();
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn gilbert_covers_arbitrary_rectangles() {
        for (w, h) in [(1i64, 1i64), (5, 1), (1, 7), (6, 4), (7, 5), (30, 23), (2, 9), (25, 6)] {
            let path = gilbert2d(w, h);
            assert_eq!(path.len() as i64, w * h, "{w}x{h} wrong length");
            let set: HashSet<_> = path.iter().cloned().collect();
            assert_eq!(set.len() as i64, w * h, "{w}x{h} repeats points");
            for p in &path {
                assert!(p.0 >= 0 && p.0 < w && p.1 >= 0 && p.1 < h);
            }
            // Pseudo-Hilbert guarantee: steps stay Chebyshev-adjacent and
            // at most one step per rectangle is diagonal.
            let mut diagonals = 0;
            for pair in path.windows(2) {
                let dx = (pair[0].0 - pair[1].0).abs();
                let dy = (pair[0].1 - pair[1].1).abs();
                assert!(dx.max(dy) == 1, "{w}x{h} jumped at {pair:?}");
                if dx + dy == 2 {
                    diagonals += 1;
                }
            }
            assert!(diagonals <= 1, "{w}x{h} has {diagonals} diagonal steps");
        }
    }

    #[test]
    fn gilbert_handles_degenerate_sizes() {
        assert!(gilbert2d(0, 5).is_empty());
        assert!(gilbert2d(4, 0).is_empty());
        assert_eq!(gilbert2d(1, 1), vec![(0, 0)]);
    }

    #[test]
    fn hilbert_order_clamps_and_orders() {
        let schema = ArraySchema::new(
            "B",
            vec![AttributeDef::new("v", AttributeType::Double)],
            vec![
                DimensionDef::unbounded("time", 0, 1440),
                DimensionDef::bounded("lon", -180, 180, 12),
                DimensionDef::bounded("lat", -90, 90, 12),
            ],
        )
        .unwrap();
        let order = HilbertOrder::for_schema(&schema, 64);
        assert!(order.bits() >= 6); // lon has 31 chunks -> needs >= 5 bits; hint 64 -> 6
        let a = order.index_of(&ChunkCoords::new([0, 0, 0]));
        let b = order.index_of(&ChunkCoords::new([0, 0, 1]));
        assert_ne!(a, b);
        // Clamping: a huge time index must not panic.
        let _ = order.index_of(&ChunkCoords::new([1 << 40, 3, 3]));
    }

    #[test]
    fn sixty_four_bit_cube_accepts_full_range_coordinates() {
        // bits == 64 is the special case in the input validation: the
        // `c < (1 << bits)` guard would shift by the full width, so it is
        // bypassed — every u64 coordinate is inside a 2^64 cube.
        for &c in &[0u64, 1, u64::MAX / 2, u64::MAX] {
            let h = hilbert_index(&[c], 64);
            assert_eq!(hilbert_coords(h, 64, 1), vec![c]);
        }
        // Two dimensions at 64 bits exactly fills u128 (64 * 2 == 128).
        let h = hilbert_index(&[u64::MAX, u64::MAX], 64);
        assert_eq!(hilbert_coords(h, 64, 2), vec![u64::MAX, u64::MAX]);
        // The curve must still be bijective near the top of the range.
        let a = hilbert_index(&[u64::MAX, 0], 64);
        let b = hilbert_index(&[0, u64::MAX], 64);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "overflow u128")]
    fn index_wider_than_u128_is_rejected() {
        // 64 bits x 3 dims = 192 > 128.
        let _ = hilbert_index(&[0, 0, 0], 64);
    }

    #[test]
    #[should_panic(expected = "overflow u128")]
    fn inverse_wider_than_u128_is_rejected() {
        let _ = hilbert_coords(0, 33, 4); // 132 > 128
    }

    #[test]
    #[should_panic(expected = "coordinate outside cube")]
    fn coordinate_beyond_cube_is_rejected() {
        let _ = hilbert_index(&[4, 0], 2); // 4 >= 2^2
    }

    #[test]
    #[should_panic(expected = "at least one coordinate")]
    fn empty_coordinates_are_rejected() {
        let _ = hilbert_index(&[], 4);
    }

    #[test]
    fn boundary_bits_times_dims_exactly_128_is_accepted() {
        // 32 bits x 4 dims == 128: legal, and must round-trip.
        let coords = [1u64 << 31, 7, (1 << 32) - 1, 12345];
        let h = hilbert_index(&coords, 32);
        assert_eq!(hilbert_coords(h, 32, 4), coords.to_vec());
        // 1 bit x 128 dims == 128: the degenerate wide case still works
        // (exercises the heap fallback past the inline scratch).
        let wide = vec![1u64; 128];
        let h = hilbert_index(&wide, 1);
        assert_eq!(hilbert_coords(h, 1, 128), wide);
    }

    #[test]
    fn locality_beats_row_major_on_average() {
        // Average Euclidean distance between curve-consecutive chunks should
        // be 1 for Hilbert; row-major order jumps rows. This pins down the
        // property the partitioner relies on.
        let bits = 4;
        let side = 1u64 << bits;
        let mut hilbert_total = 0f64;
        let mut steps = 0;
        let mut prev: Option<Vec<u64>> = None;
        for h in 0..(side * side) as u128 {
            let c = hilbert_coords(h, bits, 2);
            if let Some(p) = prev {
                let dx = c[0] as f64 - p[0] as f64;
                let dy = c[1] as f64 - p[1] as f64;
                hilbert_total += (dx * dx + dy * dy).sqrt();
                steps += 1;
            }
            prev = Some(c);
        }
        let hilbert_avg = hilbert_total / f64::from(steps);
        assert!((hilbert_avg - 1.0).abs() < 1e-9);
    }
}
