//! Error type for the array data model.

use std::fmt;

/// Errors raised by schema construction, parsing, and cell ingestion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArrayError {
    /// A schema declaration was structurally invalid (empty dims, zero
    /// chunk interval, inverted ranges, duplicate names, ...).
    InvalidSchema(String),
    /// A schema string could not be parsed.
    Parse(String),
    /// A cell coordinate fell outside the declared dimension ranges.
    OutOfBounds {
        /// Dimension name that was violated.
        dimension: String,
        /// Offending coordinate value.
        coordinate: i64,
    },
    /// The number of coordinates or attribute values did not match the schema.
    Arity {
        /// What was expected (dimension or attribute count).
        expected: usize,
        /// What was supplied.
        got: usize,
    },
    /// An attribute value's type did not match its declaration.
    TypeMismatch {
        /// Attribute name.
        attribute: String,
        /// Declared type, as text.
        expected: &'static str,
        /// Supplied type, as text.
        got: &'static str,
    },
    /// Lookup of an unknown dimension or attribute name.
    UnknownName(String),
    /// Absorbed a chunk into a position that already holds one.
    ChunkOccupied(String),
}

impl fmt::Display for ArrayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArrayError::InvalidSchema(msg) => write!(f, "invalid schema: {msg}"),
            ArrayError::Parse(msg) => write!(f, "schema parse error: {msg}"),
            ArrayError::OutOfBounds { dimension, coordinate } => {
                write!(f, "coordinate {coordinate} outside range of dimension `{dimension}`")
            }
            ArrayError::Arity { expected, got } => {
                write!(f, "arity mismatch: expected {expected}, got {got}")
            }
            ArrayError::TypeMismatch { attribute, expected, got } => {
                write!(f, "attribute `{attribute}` expects {expected}, got {got}")
            }
            ArrayError::UnknownName(name) => write!(f, "unknown dimension or attribute `{name}`"),
            ArrayError::ChunkOccupied(coords) => {
                write!(f, "chunk position {coords} already holds a chunk")
            }
        }
    }
}

impl std::error::Error for ArrayError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ArrayError>;
