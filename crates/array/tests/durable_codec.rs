//! Round-trip coverage for the array crate's durable codecs: every
//! serialized shape must decode `==` to the original (bit-identical
//! floats, verbatim tombstone bitmaps, preserved physical string
//! representations), and every strict prefix must fail with a typed
//! codec error — never a panic, never a partial value.

use array_model::{
    Array, ArrayId, ArraySchema, AttributeColumn, AttributeType, CellBuffer, Chunk, ChunkCoords,
    ScalarValue, StringEncoding,
};
use durability::{ByteReader, ByteWriter, CodecError};

fn encode<F: Fn(&mut ByteWriter)>(f: F) -> Vec<u8> {
    let mut w = ByteWriter::new();
    f(&mut w);
    w.into_bytes()
}

#[test]
fn schema_round_trips_structurally() {
    for text in [
        "A<i:int32, j:float>[x=1:4,2, y=1:4,2]",
        "T<v:double, s:string, c:char, l:int64>[t=0:*,100]",
        "M<ndvi:double>[x=0:9999,100, y=0:9999,100, day=0:*,1]",
    ] {
        let schema = ArraySchema::parse(text).unwrap();
        let bytes = encode(|w| schema.encode_into(w));
        let mut r = ByteReader::new(&bytes);
        let back = ArraySchema::decode_from(&mut r).unwrap();
        r.finish("schema tail").unwrap();
        assert_eq!(back, schema);
    }
}

#[test]
fn chunk_coords_round_trip_and_reject_bad_arity() {
    for dims in 0..=8usize {
        let coords =
            ChunkCoords::from_slice(&(0..dims as i64).map(|d| d * 3 - 5).collect::<Vec<_>>());
        let bytes = encode(|w| coords.encode_into(w));
        let mut r = ByteReader::new(&bytes);
        assert_eq!(ChunkCoords::decode_from(&mut r).unwrap(), coords);
    }
    // A length byte above MAX_DIMS is invalid, not a panic.
    let mut r = ByteReader::new(&[9]);
    assert!(matches!(ChunkCoords::decode_from(&mut r), Err(CodecError::Invalid { .. })));
}

#[test]
fn scalar_values_round_trip_bit_exactly() {
    let values = [
        ScalarValue::Int32(-7),
        ScalarValue::Int64(i64::MIN),
        ScalarValue::Float(-0.0),
        ScalarValue::Float(f32::NAN),
        ScalarValue::Double(f64::INFINITY),
        ScalarValue::Double(-0.0),
        ScalarValue::Char(b'\0'),
        ScalarValue::Str("héllo wörld".into()),
        ScalarValue::Str(String::new()),
    ];
    for v in &values {
        let bytes = encode(|w| v.encode_into(w));
        let mut r = ByteReader::new(&bytes);
        let back = ScalarValue::decode_from(&mut r).unwrap();
        // Compare bit patterns, not PartialEq — NaN != NaN.
        match (&back, v) {
            (ScalarValue::Float(a), ScalarValue::Float(b)) => {
                assert_eq!(a.to_bits(), b.to_bits())
            }
            (ScalarValue::Double(a), ScalarValue::Double(b)) => {
                assert_eq!(a.to_bits(), b.to_bits())
            }
            _ => assert_eq!(&back, v),
        }
    }
    let mut r = ByteReader::new(&[99]);
    assert!(matches!(ScalarValue::decode_from(&mut r), Err(CodecError::Invalid { .. })));
}

fn str_column(encoding: StringEncoding, vals: &[&str]) -> AttributeColumn {
    let mut col = AttributeColumn::with_encoding(AttributeType::Str, encoding);
    for v in vals {
        col.push(ScalarValue::Str((*v).into())).unwrap();
    }
    col
}

#[test]
fn columns_round_trip_preserving_physical_representation() {
    let mut cases = vec![
        AttributeColumn::Int32(vec![1, -2, i32::MAX]),
        AttributeColumn::Int64(vec![i64::MIN, 0]),
        AttributeColumn::Float(vec![1.5, -0.0]),
        AttributeColumn::Double(vec![f64::MAX, f64::MIN_POSITIVE]),
        AttributeColumn::Char(vec![0, 255, b'x']),
        str_column(StringEncoding::Plain, &["a", "", "a"]),
        str_column(StringEncoding::Dict { cap: 64 }, &["a", "b", "a", ""]),
        // Spilled: cap 1 forces conversion to plain mid-stream.
        str_column(StringEncoding::Dict { cap: 1 }, &["a", "b", "a"]),
    ];
    cases.push(AttributeColumn::new(AttributeType::Str)); // empty dict column
    for col in &cases {
        let bytes = encode(|w| col.encode_into(w));
        let mut r = ByteReader::new(&bytes);
        let back = AttributeColumn::decode_from(&mut r).unwrap();
        r.finish("column tail").unwrap();
        assert_eq!(&back, col);
        assert_eq!(back.byte_size(), col.byte_size());
        assert_eq!(back.string_encoding(), col.string_encoding());
    }
    // A dictionary code past the dictionary is invalid.
    let good = str_column(StringEncoding::Dict { cap: 64 }, &["a"]);
    let mut bytes = encode(|w| good.encode_into(w));
    let n = bytes.len();
    bytes[n - 4..].copy_from_slice(&7u32.to_le_bytes()); // last code -> 7
    let mut r = ByteReader::new(&bytes);
    assert!(matches!(AttributeColumn::decode_from(&mut r), Err(CodecError::Invalid { .. })));
}

fn sample_chunk(encoding: StringEncoding, tombstone: bool) -> Chunk {
    let schema = ArraySchema::parse("A<i:int32, s:string>[x=1:8,8, y=1:8,8]").unwrap();
    let mut c = Chunk::with_encoding(&schema, ChunkCoords::new([0, 0]), encoding);
    for (k, v) in ["a", "b", "c", "a"].iter().enumerate() {
        let x = k as i64 + 1;
        c.push_cell(
            &schema,
            vec![x, x],
            vec![ScalarValue::Int32(k as i32), ScalarValue::Str((*v).to_string())],
        )
        .unwrap();
    }
    if tombstone {
        assert!(c.retract_cell(&[2, 2]).is_some());
    }
    c
}

#[test]
fn chunks_round_trip_including_tombstones() {
    for encoding in
        [StringEncoding::Plain, StringEncoding::Dict { cap: 2 }, StringEncoding::Dict { cap: 64 }]
    {
        for tombstone in [false, true] {
            let chunk = sample_chunk(encoding, tombstone);
            let bytes = encode(|w| chunk.encode_into(w));
            let mut r = ByteReader::new(&bytes);
            let back = Chunk::decode_from(&mut r).unwrap();
            r.finish("chunk tail").unwrap();
            assert_eq!(back, chunk, "encoding {encoding:?}, tombstone {tombstone}");
            assert_eq!(back.byte_size(), chunk.byte_size());
            assert_eq!(back.cell_count(), chunk.cell_count());
            assert_eq!(back.tombstone_count(), chunk.tombstone_count());
        }
    }
}

#[test]
fn every_strict_prefix_of_a_chunk_fails_typed() {
    let chunk = sample_chunk(StringEncoding::Dict { cap: 64 }, true);
    let bytes = encode(|w| chunk.encode_into(w));
    for cut in 0..bytes.len() {
        let mut r = ByteReader::new(&bytes[..cut]);
        match Chunk::decode_from(&mut r) {
            Err(CodecError::Truncated { .. }) | Err(CodecError::Invalid { .. }) => {}
            Ok(_) => panic!("prefix of {cut}/{} bytes decoded as a full chunk", bytes.len()),
        }
    }
}

#[test]
fn arrays_round_trip_with_all_their_chunks() {
    let schema = ArraySchema::parse("A<i:int32, s:string>[x=1:8,2, y=1:8,2]").unwrap();
    let mut a = Array::with_encoding(ArrayId(3), schema, StringEncoding::Dict { cap: 16 });
    for k in 0..8i64 {
        a.insert_cell(
            vec![k + 1, (k % 4) + 1],
            vec![ScalarValue::Int32(k as i32), ScalarValue::Str(format!("tag{}", k % 3))],
        )
        .unwrap();
    }
    a.delete_cells(&[1, 1]).unwrap();
    let bytes = encode(|w| a.encode_into(w));
    let mut r = ByteReader::new(&bytes);
    let back = Array::decode_from(&mut r).unwrap();
    r.finish("array tail").unwrap();
    assert_eq!(back.id, a.id);
    assert_eq!(back.schema, a.schema);
    assert_eq!(back.string_encoding(), a.string_encoding());
    assert_eq!(back.chunk_count(), a.chunk_count());
    assert_eq!(back.cell_count(), a.cell_count());
    assert_eq!(back.byte_size(), a.byte_size());
    for ((ca, a_chunk), (cb, b_chunk)) in a.chunks().zip(back.chunks()) {
        assert_eq!(ca, cb);
        assert_eq!(a_chunk, b_chunk);
    }
}

#[test]
fn cell_buffers_round_trip_with_retractions() {
    let schema = ArraySchema::parse("C<v:double, s:string>[x=0:*,64]").unwrap();
    let mut buf = CellBuffer::new(&schema);
    let mut scratch = Vec::new();
    for k in 0..10i64 {
        scratch
            .extend([ScalarValue::Double(k as f64 * 0.5), ScalarValue::Str(format!("t{}", k % 4))]);
        buf.push_row(&[k], &mut scratch).unwrap();
    }
    buf.push_retraction(&[2]).unwrap();
    buf.push_retraction(&[4]).unwrap();
    let bytes = encode(|w| buf.encode_into(w));
    let mut r = ByteReader::new(&bytes);
    let back = CellBuffer::decode_from(&mut r).unwrap();
    r.finish("batch tail").unwrap();
    assert_eq!(back, buf);
    assert_eq!(back.retractions_flat(), buf.retractions_flat());
    assert_eq!(back.rows(), buf.rows());
}
