//! Property tests for the array substrate: schema text round-trips,
//! cell→chunk mapping consistency, and space-filling-curve invariants.

use array_model::{
    chunk_of, gilbert2d, hilbert_coords, hilbert_index, Array, ArrayId, ArraySchema, AttributeDef,
    AttributeType, CellBuffer, ChunkCoords, DimensionDef, ScalarValue, StringEncoding, MAX_DIMS,
};
use proptest::prelude::*;

/// A deterministic string from a seed, deliberately covering the nasty
/// distributions: empty strings, multi-byte unicode, long payloads, and
/// a numbered tail whose cardinality is high enough to cross small
/// dictionary caps.
fn string_for(seed: u64) -> String {
    match seed % 8 {
        0 => String::new(),
        1 => "λ-端口-🚢".to_string(),
        2 => "port".to_string(),
        3 => "a-deliberately-long-provenance-string-that-outweighs-its-code".to_string(),
        4 => "ß".to_string(),
        _ => format!("s{}", seed % 10_000),
    }
}

/// A deterministic scalar of the given type derived from a seed.
fn value_for(ty: AttributeType, seed: u64) -> ScalarValue {
    match ty {
        AttributeType::Int32 => ScalarValue::Int32(seed as i32),
        AttributeType::Int64 => ScalarValue::Int64(seed as i64),
        AttributeType::Float => ScalarValue::Float((seed % 1_000) as f32 / 7.0),
        AttributeType::Double => ScalarValue::Double((seed % 100_000) as f64 / 13.0),
        AttributeType::Char => ScalarValue::Char((seed % 96 + 32) as u8),
        AttributeType::Str => ScalarValue::Str(string_for(seed)),
    }
}

fn arb_type() -> impl Strategy<Value = AttributeType> {
    prop_oneof![
        Just(AttributeType::Int32),
        Just(AttributeType::Int64),
        Just(AttributeType::Float),
        Just(AttributeType::Double),
        Just(AttributeType::Char),
        Just(AttributeType::Str),
    ]
}

/// A degenerate dict scatter — so many chunks × so many distinct strings
/// that the dense per-group remap tables would outweigh the data — must
/// take the row-wise fallback and still build exactly what per-cell
/// insertion builds (including per-chunk spill decisions).
#[test]
fn huge_remap_footprint_falls_back_without_changing_results() {
    let schema = ArraySchema::new(
        "W",
        vec![AttributeDef::new("s", AttributeType::Str)],
        vec![DimensionDef::bounded("x", 0, 8191, 2)],
    )
    .unwrap();
    // 8192 rows → 4096 chunks; ~4200 distinct strings pushes the
    // chunks × dictionary product past the dense-remap cap (1 << 24).
    let rows: Vec<(Vec<i64>, Vec<ScalarValue>)> = (0..8192i64)
        .map(|x| (vec![x], vec![ScalarValue::Str(format!("u{}", (x * 11) % 4200))]))
        .collect();
    let mut buffer = CellBuffer::new(&schema);
    let mut scratch = Vec::new();
    let mut per_cell = Array::new(ArrayId(0), schema.clone());
    for (cell, values) in &rows {
        per_cell.insert_cell(cell.clone(), values.clone()).expect("in bounds");
        scratch.extend(values.iter().cloned());
        buffer.push_row(cell, &mut scratch).expect("schema-shaped");
    }
    assert!(buffer.columns()[0].as_dict().expect("transport dict").dict().len() > 4096);
    let mut batched = Array::new(ArrayId(0), schema.clone());
    batched.insert_batch(&buffer).expect("in bounds");
    assert_eq!(batched.chunk_count(), 4096);
    assert_eq!(batched.byte_size(), per_cell.byte_size());
    assert_eq!(batched.descriptors(), per_cell.descriptors());
    for (coords, chunk) in per_cell.chunks() {
        assert_eq!(batched.chunk(coords), Some(chunk), "chunk {coords} differs");
    }
}

prop_compose! {
    fn arb_dimension(idx: usize)(
        start in -1000i64..1000,
        len in 0i64..500,
        interval in 1i64..64,
        bounded in any::<bool>(),
    ) -> DimensionDef {
        let name = format!("d{idx}");
        if bounded {
            DimensionDef::bounded(name, start, start + len, interval)
        } else {
            DimensionDef::unbounded(name, start, interval)
        }
    }
}

fn arb_schema() -> impl Strategy<Value = ArraySchema> {
    let dims = (1usize..4).prop_flat_map(|n| (0..n).map(arb_dimension).collect::<Vec<_>>());
    let attrs = proptest::collection::vec(arb_type(), 1..5).prop_map(|types| {
        types
            .into_iter()
            .enumerate()
            .map(|(i, ty)| AttributeDef::new(format!("a{i}"), ty))
            .collect::<Vec<_>>()
    });
    (dims, attrs).prop_map(|(dimensions, attributes)| {
        ArraySchema::new("T", attributes, dimensions).expect("generated schema is valid")
    })
}

proptest! {
    /// `Display` output must parse back to an identical schema.
    #[test]
    fn schema_text_roundtrips(schema in arb_schema()) {
        let printed = schema.to_string();
        let reparsed = ArraySchema::parse(&printed)
            .unwrap_or_else(|e| panic!("reparse of `{printed}` failed: {e}"));
        prop_assert_eq!(schema, reparsed);
    }

    /// Every in-bounds cell maps to a chunk whose range contains it.
    #[test]
    fn cell_lands_inside_its_chunk(
        schema in arb_schema(),
        offsets in proptest::collection::vec(0i64..400, 3),
    ) {
        let cell: Vec<i64> = schema
            .dimensions
            .iter()
            .zip(&offsets)
            .map(|(d, &o)| {
                let span = d.end.map(|e| e - d.start + 1).unwrap_or(i64::MAX / 4);
                d.start + o.min(span - 1)
            })
            .collect();
        let chunk = chunk_of(&schema, &cell).expect("cell is in bounds");
        for (d, dim) in schema.dimensions.iter().enumerate() {
            let (lo, hi) = dim.chunk_range(chunk.index(d));
            prop_assert!(cell[d] >= lo && cell[d] <= hi,
                "cell {:?} outside chunk range [{lo}, {hi}] on dim {d}", cell);
        }
    }

    /// Hilbert index/coords are mutually inverse for arbitrary points.
    #[test]
    fn hilbert_roundtrips(
        ndims in 1usize..5,
        bits in 1u32..6,
        seed in any::<u64>(),
    ) {
        let side = 1u64 << bits;
        let coords: Vec<u64> = (0..ndims)
            .map(|d| seed.rotate_left(13 * d as u32) % side)
            .collect();
        let h = hilbert_index(&coords, bits);
        prop_assert!(h < (1u128 << (bits as usize * ndims)));
        prop_assert_eq!(hilbert_coords(h, bits, ndims), coords);
    }

    /// The generalized pseudo-Hilbert scan covers any rectangle exactly
    /// once; every step is Chebyshev-adjacent and at most one step per
    /// rectangle is diagonal (the paper's citation [32] permits the same).
    #[test]
    fn gilbert_covers_any_rectangle(w in 1i64..40, h in 1i64..40) {
        let path = gilbert2d(w, h);
        prop_assert_eq!(path.len() as i64, w * h);
        let mut seen = std::collections::HashSet::new();
        for &(x, y) in &path {
            prop_assert!(x >= 0 && x < w && y >= 0 && y < h);
            prop_assert!(seen.insert((x, y)), "repeated point ({x},{y})");
        }
        let mut diagonals = 0;
        for pair in path.windows(2) {
            let dx = (pair[0].0 - pair[1].0).abs();
            let dy = (pair[0].1 - pair[1].1).abs();
            prop_assert_eq!(dx.max(dy), 1,
                "curve jumped between {:?} and {:?}", pair[0], pair[1]);
            if dx + dy == 2 {
                diagonals += 1;
            }
        }
        prop_assert!(diagonals <= 1, "{} diagonal steps in {}x{}", diagonals, w, h);
    }

    /// The inline `ChunkCoords` must be observationally equivalent to the
    /// old `Vec<i64>` representation: identical equality, ordering,
    /// hash-based deduplication, and a lossless round trip through the
    /// serialized (`Vec<i64>`) form.
    #[test]
    fn inline_coords_match_vec_model(
        vecs in proptest::collection::vec(
            proptest::collection::vec(-1000i64..1000, 1..MAX_DIMS + 1),
            2..20,
        ),
    ) {
        use std::collections::{BTreeSet, HashSet};
        let inline: Vec<ChunkCoords> =
            vecs.iter().map(|v| ChunkCoords::new(v.as_slice())).collect();

        // Round trip through the wire form (the old representation's
        // serde payload was exactly this Vec<i64>).
        for (v, c) in vecs.iter().zip(&inline) {
            prop_assert_eq!(&c.to_vec(), v);
            prop_assert_eq!(ChunkCoords::new(c.to_vec()), *c);
            prop_assert_eq!(c.ndims(), v.len());
            for (d, &x) in v.iter().enumerate() {
                prop_assert_eq!(c.index(d), x);
            }
        }

        // Pairwise comparisons must match the Vec model exactly.
        for (va, ca) in vecs.iter().zip(&inline) {
            for (vb, cb) in vecs.iter().zip(&inline) {
                prop_assert_eq!(va == vb, ca == cb);
                prop_assert_eq!(va.cmp(vb), ca.cmp(cb));
            }
        }

        // Hash/ord containers dedup identically.
        let vec_set: BTreeSet<_> = vecs.iter().cloned().collect();
        let ord_set: BTreeSet<_> = inline.iter().copied().collect();
        let hash_set: HashSet<_> = inline.iter().copied().collect();
        prop_assert_eq!(ord_set.len(), vec_set.len());
        prop_assert_eq!(hash_set.len(), vec_set.len());

        // Sorted order is the Vec order.
        let mut sorted_vecs = vecs.clone();
        sorted_vecs.sort();
        let mut sorted_inline = inline.clone();
        sorted_inline.sort();
        let as_vecs: Vec<Vec<i64>> = sorted_inline.iter().map(|c| c.to_vec()).collect();
        prop_assert_eq!(as_vecs, sorted_vecs);
    }

    /// Region/chunk intersection agrees with brute-force cell membership.
    #[test]
    fn region_intersection_is_sound(
        lo0 in 0i64..20, len0 in 0i64..20,
        lo1 in 0i64..20, len1 in 0i64..20,
    ) {
        let schema = ArraySchema::new(
            "R",
            vec![AttributeDef::new("v", AttributeType::Int32)],
            vec![
                DimensionDef::bounded("x", 0, 19, 3),
                DimensionDef::bounded("y", 0, 19, 4),
            ],
        ).unwrap();
        let region = array_model::Region::new(
            vec![lo0, lo1],
            vec![(lo0 + len0).min(19), (lo1 + len1).min(19)],
        );
        for chunk in array_model::all_chunks(&schema).unwrap() {
            let brute = (0..20).any(|x| (0..20).any(|y| {
                region.contains_cell(&[x, y])
                    && chunk_of(&schema, &[x, y]).unwrap() == chunk
            }));
            prop_assert_eq!(
                region.intersects_chunk(&schema, &chunk),
                brute,
                "chunk {:?} vs region {:?}", chunk, region
            );
        }
    }

    /// The flat-batch inserts (`insert_batch`, and its consuming twin
    /// `insert_batch_owned`) must be observationally identical to
    /// per-cell `insert_cell` over arbitrary schemas and shuffled row
    /// orders: same chunks (coordinates, per-column payloads, in-chunk
    /// cell order), same descriptors, same byte sizes.
    #[test]
    fn insert_batch_matches_per_cell_inserts(
        schema in arb_schema(),
        seed in any::<u64>(),
        count in 1usize..60,
    ) {
        // Deterministic in-bounds rows (duplicates allowed — both paths
        // must store repeated positions identically).
        let cells: Vec<(Vec<i64>, Vec<ScalarValue>)> = (0..count)
            .map(|i| {
                let s = seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(i as u64 * 0x0765_4321_0fed);
                let cell: Vec<i64> = schema
                    .dimensions
                    .iter()
                    .enumerate()
                    .map(|(d, dim)| {
                        let span = dim.end.map(|e| e - dim.start + 1).unwrap_or(1 << 18) as u64;
                        dim.start + (s.rotate_left(9 * d as u32) % span) as i64
                    })
                    .collect();
                let values: Vec<ScalarValue> = schema
                    .attributes
                    .iter()
                    .enumerate()
                    .map(|(a, attr)| value_for(attr.ty, s.rotate_right(13 * a as u32 + 1)))
                    .collect();
                (cell, values)
            })
            .collect();
        // Deterministic Fisher–Yates shuffle off the seed.
        let mut order: Vec<usize> = (0..count).collect();
        let mut st = seed | 1;
        for i in (1..count).rev() {
            st = st.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (st >> 33) as usize % (i + 1));
        }
        for rows in [&(0..count).collect::<Vec<_>>(), &order] {
            let mut per_cell = Array::new(ArrayId(0), schema.clone());
            let mut buffer = CellBuffer::new(&schema);
            let mut scratch = Vec::new();
            for &i in rows {
                let (cell, values) = &cells[i];
                per_cell.insert_cell(cell.clone(), values.clone()).expect("in bounds");
                scratch.extend(values.iter().cloned());
                buffer.push_row(cell, &mut scratch).expect("schema-shaped");
            }
            let mut batched = Array::new(ArrayId(0), schema.clone());
            batched.insert_batch(&buffer).expect("in bounds");
            let mut owned = Array::new(ArrayId(0), schema.clone());
            owned.insert_batch_owned(buffer).expect("in bounds");

            for flat in [&batched, &owned] {
                prop_assert_eq!(flat.cell_count(), per_cell.cell_count());
                prop_assert_eq!(flat.byte_size(), per_cell.byte_size());
                prop_assert_eq!(flat.chunk_count(), per_cell.chunk_count());
                prop_assert_eq!(flat.descriptors(), per_cell.descriptors());
                for (coords, chunk) in per_cell.chunks() {
                    // Full structural equality: coordinates, columns,
                    // counters, and in-chunk cell order.
                    prop_assert_eq!(flat.chunk(coords), Some(chunk));
                    // The running `bytes` counter must equal a rescan of
                    // the actual stored columns — `byte_size()` no
                    // longer rescans, so counter drift would otherwise
                    // stay self-consistent and invisible.
                    let recomputed: u64 = schema.ndims() as u64 * 8 * chunk.cell_count()
                        + (0..schema.attributes.len())
                            .map(|a| chunk.column(a).expect("schema-shaped").byte_size())
                            .sum::<u64>();
                    prop_assert_eq!(chunk.byte_size(), recomputed);
                }
            }
        }
    }

    /// `Chunk::push_cell` round-trips under arbitrary schemas (up to
    /// `MAX_DIMS` dimensions) and arbitrary cell insertion orders: the
    /// array's cell/byte totals and every chunk's descriptor — exactly
    /// what data placement sees — are order-invariant and agree with the
    /// stored payload, and every pushed `(cell, values)` row reads back
    /// intact.
    #[test]
    fn push_cell_round_trips_and_descriptors_are_order_invariant(
        schema in arb_schema(),
        seed in any::<u64>(),
        count in 1usize..48,
    ) {
        // Deterministic in-bounds cells (deduped — one row per position).
        let mut cells: Vec<(Vec<i64>, Vec<ScalarValue>)> = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..count {
            let s = seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(i as u64 * 0x1234_5678_9abc);
            let cell: Vec<i64> = schema
                .dimensions
                .iter()
                .enumerate()
                .map(|(d, dim)| {
                    let span = dim.end.map(|e| e - dim.start + 1).unwrap_or(1 << 20) as u64;
                    dim.start + (s.rotate_left(7 * d as u32) % span) as i64
                })
                .collect();
            if !seen.insert(cell.clone()) {
                continue;
            }
            let values: Vec<ScalarValue> = schema
                .attributes
                .iter()
                .enumerate()
                .map(|(a, attr)| value_for(attr.ty, s.rotate_right(11 * a as u32 + 1)))
                .collect();
            cells.push((cell, values));
        }
        let n = cells.len();
        let build = |order: &[usize]| -> Array {
            let mut a = Array::new(ArrayId(0), schema.clone());
            for &i in order {
                a.insert_cell(cells[i].0.clone(), cells[i].1.clone()).expect("in bounds");
            }
            a
        };
        let forward: Vec<usize> = (0..n).collect();
        // Deterministic Fisher–Yates shuffle off the seed.
        let mut shuffled = forward.clone();
        let mut st = seed | 1;
        for i in (1..n).rev() {
            st = st.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            shuffled.swap(i, (st >> 33) as usize % (i + 1));
        }
        let a = build(&forward);
        let b = build(&shuffled);

        // Totals and descriptors are insertion-order invariant.
        prop_assert_eq!(a.cell_count(), n as u64);
        prop_assert_eq!(b.cell_count(), a.cell_count());
        prop_assert_eq!(b.byte_size(), a.byte_size());
        prop_assert_eq!(b.chunk_count(), a.chunk_count());
        prop_assert_eq!(a.descriptors(), b.descriptors());

        // Each descriptor agrees with its chunk's actual payload.
        for d in a.descriptors() {
            let chunk = a.chunk(&d.key.coords).expect("descriptor has a chunk");
            prop_assert_eq!(d.bytes, chunk.byte_size());
            prop_assert_eq!(d.cells, chunk.cell_count());
            prop_assert_eq!(d.key.array, ArrayId(0));
        }

        // Every pushed row reads back from its routed chunk, both orders.
        for array in [&a, &b] {
            for (cell, values) in &cells {
                let coords = chunk_of(&schema, cell).expect("in bounds");
                let chunk = array.chunk(&coords).expect("cell was routed here");
                let row = chunk
                    .iter_cells()
                    .find(|(c, _)| *c == cell.as_slice())
                    .map(|(_, r)| r)
                    .expect("cell stored");
                for (ai, v) in values.iter().enumerate() {
                    prop_assert_eq!(chunk.column(ai).expect("schema-shaped").get(row),
                        Some(v.clone()));
                }
            }
        }
    }

    /// Dictionary encode → decode round-trips over arbitrary string
    /// distributions (empty, unicode, long payloads, high-cardinality
    /// tails) and arbitrary caps: every value reads back intact, the
    /// byte size equals both the incremental deltas and an independent
    /// recomputation, and the column spills to plain storage exactly
    /// when the distinct count crosses the cap.
    #[test]
    fn dict_column_round_trips_and_spills_at_the_cap(
        seeds in proptest::collection::vec(any::<u64>(), 1..120),
        cap in 1u32..12,
    ) {
        use array_model::AttributeColumn;
        let values: Vec<String> = seeds.iter().map(|&s| string_for(s)).collect();
        let mut col = AttributeColumn::with_encoding(
            AttributeType::Str,
            StringEncoding::Dict { cap },
        );
        let mut delta_sum = 0i64;
        for v in &values {
            delta_sum += col.push(ScalarValue::Str(v.clone())).expect("string column");
        }
        prop_assert_eq!(col.len(), values.len());
        // Round trip, through both accessors.
        for (i, v) in values.iter().enumerate() {
            prop_assert_eq!(col.get_str(i), Some(v.as_str()));
            prop_assert_eq!(col.get(i), Some(ScalarValue::Str(v.clone())));
        }
        // Spill iff the distinct count crossed the cap.
        let distinct: std::collections::BTreeSet<&str> =
            values.iter().map(String::as_str).collect();
        prop_assert_eq!(
            col.as_dict().is_none(),
            distinct.len() > cap as usize,
            "cap {} with {} distinct strings", cap, distinct.len()
        );
        // Bytes: incremental deltas == byte_size() == independent model.
        prop_assert_eq!(col.byte_size() as i64, delta_sum);
        let expected: u64 = match col.as_dict() {
            Some(d) => {
                // Codes are first-seen order — check against a naive model.
                let mut model: Vec<&str> = Vec::new();
                let codes: Vec<u32> = values
                    .iter()
                    .map(|v| {
                        match model.iter().position(|m| m == v) {
                            Some(p) => p as u32,
                            None => {
                                model.push(v);
                                (model.len() - 1) as u32
                            }
                        }
                    })
                    .collect();
                prop_assert_eq!(d.codes(), &codes[..]);
                let dict: Vec<&str> = d.dict().strings().iter().map(String::as_str).collect();
                prop_assert_eq!(dict, model.clone());
                model.iter().map(|s| s.len() as u64 + 4).sum::<u64>()
                    + 4 * values.len() as u64
            }
            None => values.iter().map(|s| s.len() as u64 + 4).sum(),
        };
        prop_assert_eq!(col.byte_size(), expected);
    }

    /// An arbitrary interleaved insert/retract/compact script on a
    /// `Chunk` — dictionary encoding under spill-forcing caps, and
    /// plain storage — must leave `byte_size`/`cell_count`/dict state
    /// **structurally equal** to a chunk built from only the surviving
    /// cells in their original order. Checked at every compact point in
    /// the script, not just the end, and the running byte counter must
    /// equal an independent rescan of the compacted columns (counter
    /// drift is self-consistent and invisible otherwise).
    #[test]
    fn interleaved_insert_retract_compact_matches_survivors_only_build(
        script in proptest::collection::vec((0u8..8, any::<u64>()), 1..120),
        cap in 1u32..8,
        use_plain in any::<bool>(),
    ) {
        use array_model::Chunk;
        let schema = ArraySchema::new(
            "C",
            vec![
                AttributeDef::new("s", AttributeType::Str),
                AttributeDef::new("v", AttributeType::Int32),
                AttributeDef::new("t", AttributeType::Str),
            ],
            vec![
                DimensionDef::bounded("x", 0, 15, 16),
                DimensionDef::bounded("y", 0, 15, 16),
            ],
        ).unwrap();
        let encoding =
            if use_plain { StringEncoding::Plain } else { StringEncoding::Dict { cap } };
        let coords = ChunkCoords::new([0i64, 0]);

        // The script target and its row-level model: every inserted row
        // in order, with a live flag retraction clears. Survivor builds
        // replay the live rows in original order.
        let mut chunk = Chunk::with_encoding(&schema, coords, encoding);
        let mut model: Vec<(Vec<i64>, Vec<ScalarValue>, bool)> = Vec::new();
        let survivors_only = |model: &[(Vec<i64>, Vec<ScalarValue>, bool)]| -> Chunk {
            let mut c = Chunk::with_encoding(&schema, coords, encoding);
            for (cell, values, live) in model {
                if *live {
                    c.push_cell(&schema, cell.clone(), values.clone()).expect("in bounds");
                }
            }
            c
        };

        for &(op, s) in &script {
            match op {
                // Insert: duplicate positions are likely (16 slots per
                // axis) and legal — retraction takes the LAST live one.
                0..=4 => {
                    let cell = vec![(s % 16) as i64, (s.rotate_left(21) % 16) as i64];
                    let values = vec![
                        ScalarValue::Str(string_for(s)),
                        ScalarValue::Int32(s as i32),
                        ScalarValue::Str(string_for(s.rotate_right(17))),
                    ];
                    chunk.push_cell(&schema, cell.clone(), values.clone()).expect("in bounds");
                    model.push((cell, values, true));
                }
                // Retract: usually a live cell (so deletes really
                // exercise the tombstone path), sometimes an arbitrary
                // position that may be missing or already retracted.
                5 | 6 => {
                    let live: Vec<usize> = (0..model.len()).filter(|&i| model[i].2).collect();
                    let target: Vec<i64> = if !live.is_empty() && s % 4 != 0 {
                        model[live[(s / 4) as usize % live.len()]].0.clone()
                    } else {
                        vec![(s % 16) as i64, (s.rotate_left(33) % 16) as i64]
                    };
                    let expect = model
                        .iter()
                        .rposition(|(c, _, live)| *live && c == &target);
                    let freed = chunk.retract_cell(&target);
                    prop_assert_eq!(freed.is_some(), expect.is_some(),
                        "retract of {:?} disagrees with the model", target);
                    if let Some(i) = expect {
                        model[i].2 = false;
                        prop_assert!(freed.unwrap() > 0, "a live row frees its coordinate bytes");
                    }
                }
                // Compact: the reclaimed chunk must be structurally
                // identical to the survivors-only build, right now.
                _ => {
                    let before = chunk.byte_size();
                    let delta = chunk.compact();
                    prop_assert_eq!(before as i64 - chunk.byte_size() as i64, delta);
                    prop_assert_eq!(&chunk, &survivors_only(&model), "mid-script compact");
                    prop_assert_eq!(chunk.tombstone_count(), 0);
                }
            }
            // The live-row counters never drift, whatever the op mix.
            let live = model.iter().filter(|(_, _, l)| *l).count();
            prop_assert_eq!(chunk.cell_count(), live as u64);
            prop_assert_eq!(
                chunk.physical_cell_count() as u64 - chunk.tombstone_count(),
                live as u64
            );
            // Every live row is visible through the iteration choke
            // point, every tombstoned row is not.
            prop_assert_eq!(chunk.iter_cells().count(), live);
        }

        // Final reclamation: structural equality with the survivors-only
        // build, and the running byte counter equals a column rescan.
        chunk.compact();
        let survivors = survivors_only(&model);
        prop_assert_eq!(&chunk, &survivors, "end-of-script compact");
        prop_assert_eq!(chunk.descriptor(ArrayId(0)), survivors.descriptor(ArrayId(0)));
        let rescan: u64 = schema.ndims() as u64 * 8 * chunk.cell_count()
            + (0..schema.attributes.len())
                .map(|a| chunk.column(a).expect("schema-shaped").byte_size())
                .sum::<u64>();
        prop_assert_eq!(chunk.byte_size(), rescan);
        // Fully-retracted chunks reclaim everything.
        if chunk.cell_count() == 0 {
            prop_assert_eq!(chunk.byte_size(), 0);
        }
    }

    /// Batched inserts, incremental two-batch merges (the append path
    /// that remaps codes across dictionaries), and `absorb` of disjoint
    /// chunk sets are all **structurally identical** to the per-cell
    /// insert path over dictionary-encoded columns — including when a
    /// small cap forces mid-stream spills to plain storage.
    #[test]
    fn dict_batches_merges_and_absorb_match_per_cell_path(
        seed in any::<u64>(),
        count in 2usize..60,
        cap in 1u32..8,
        split_pct in 0u64..100,
    ) {
        let schema = ArraySchema::new(
            "D",
            vec![
                AttributeDef::new("s", AttributeType::Str),
                AttributeDef::new("v", AttributeType::Int32),
                AttributeDef::new("t", AttributeType::Str),
            ],
            vec![
                DimensionDef::bounded("x", 0, 63, 8),
                DimensionDef::bounded("y", 0, 63, 8),
            ],
        ).unwrap();
        let encoding = StringEncoding::Dict { cap };
        let cells: Vec<(Vec<i64>, Vec<ScalarValue>)> = (0..count)
            .map(|i| {
                let s = seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(i as u64 * 0x0fed_cba9_8765);
                let cell = vec![(s % 64) as i64, (s.rotate_left(17) % 64) as i64];
                let values = vec![
                    ScalarValue::Str(string_for(s)),
                    ScalarValue::Int32(s as i32),
                    ScalarValue::Str(string_for(s.rotate_right(23))),
                ];
                (cell, values)
            })
            .collect();

        // Reference: per-cell inserts under the same (tiny) cap.
        let mut per_cell = Array::with_encoding(ArrayId(0), schema.clone(), encoding);
        for (cell, values) in &cells {
            per_cell.insert_cell(cell.clone(), values.clone()).expect("in bounds");
        }

        // One-shot batch.
        let mut buffer = CellBuffer::new(&schema);
        let mut scratch = Vec::new();
        for (cell, values) in &cells {
            scratch.extend(values.iter().cloned());
            buffer.push_row(cell, &mut scratch).expect("schema-shaped");
        }
        let mut one_shot = Array::with_encoding(ArrayId(0), schema.clone(), encoding);
        one_shot.insert_batch(&buffer).expect("in bounds");

        // Two batches split mid-stream: the second revisits chunks the
        // first created, driving the append path's dictionary remaps
        // (and spills, when the union crosses the cap).
        let k = ((count as u64 * split_pct / 100) as usize).clamp(1, count - 1);
        let mut first = CellBuffer::new(&schema);
        let mut second = CellBuffer::new(&schema);
        for (i, (cell, values)) in cells.iter().enumerate() {
            scratch.extend(values.iter().cloned());
            let dst = if i < k { &mut first } else { &mut second };
            dst.push_row(cell, &mut scratch).expect("schema-shaped");
        }
        let mut merged = Array::with_encoding(ArrayId(0), schema.clone(), encoding);
        merged.insert_batch_owned(first).expect("in bounds");
        merged.insert_batch_owned(second).expect("in bounds");

        // Absorb: rows partitioned by owning chunk, so the two halves
        // hold disjoint chunk sets and merge wholesale.
        let mut left = Array::with_encoding(ArrayId(0), schema.clone(), encoding);
        let mut right = Array::with_encoding(ArrayId(0), schema.clone(), encoding);
        for (cell, values) in &cells {
            let coords = chunk_of(&schema, cell).expect("in bounds");
            let dst = if (coords.index(0) + coords.index(1)) % 2 == 0 {
                &mut left
            } else {
                &mut right
            };
            dst.insert_cell(cell.clone(), values.clone()).expect("in bounds");
        }
        left.absorb(right).expect("disjoint chunk sets");

        for (name, built) in
            [("insert_batch", &one_shot), ("two-batch merge", &merged), ("absorb", &left)]
        {
            prop_assert_eq!(built.cell_count(), per_cell.cell_count(), "{}", name);
            prop_assert_eq!(built.byte_size(), per_cell.byte_size(), "{}", name);
            prop_assert_eq!(built.descriptors(), per_cell.descriptors(), "{}", name);
            for (coords, chunk) in per_cell.chunks() {
                // Full structural equality: codes, dictionaries, spill
                // state, counters, and in-chunk cell order.
                prop_assert_eq!(built.chunk(coords), Some(chunk), "{} at {}", name, coords);
            }
        }
    }
}
