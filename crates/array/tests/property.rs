//! Property tests for the array substrate: schema text round-trips,
//! cell→chunk mapping consistency, and space-filling-curve invariants.

use array_model::{
    chunk_of, gilbert2d, hilbert_coords, hilbert_index, ArraySchema, AttributeDef, AttributeType,
    ChunkCoords, DimensionDef, MAX_DIMS,
};
use proptest::prelude::*;

fn arb_type() -> impl Strategy<Value = AttributeType> {
    prop_oneof![
        Just(AttributeType::Int32),
        Just(AttributeType::Int64),
        Just(AttributeType::Float),
        Just(AttributeType::Double),
        Just(AttributeType::Char),
        Just(AttributeType::Str),
    ]
}

prop_compose! {
    fn arb_dimension(idx: usize)(
        start in -1000i64..1000,
        len in 0i64..500,
        interval in 1i64..64,
        bounded in any::<bool>(),
    ) -> DimensionDef {
        let name = format!("d{idx}");
        if bounded {
            DimensionDef::bounded(name, start, start + len, interval)
        } else {
            DimensionDef::unbounded(name, start, interval)
        }
    }
}

fn arb_schema() -> impl Strategy<Value = ArraySchema> {
    let dims = (1usize..4).prop_flat_map(|n| (0..n).map(arb_dimension).collect::<Vec<_>>());
    let attrs = proptest::collection::vec(arb_type(), 1..5).prop_map(|types| {
        types
            .into_iter()
            .enumerate()
            .map(|(i, ty)| AttributeDef::new(format!("a{i}"), ty))
            .collect::<Vec<_>>()
    });
    (dims, attrs).prop_map(|(dimensions, attributes)| {
        ArraySchema::new("T", attributes, dimensions).expect("generated schema is valid")
    })
}

proptest! {
    /// `Display` output must parse back to an identical schema.
    #[test]
    fn schema_text_roundtrips(schema in arb_schema()) {
        let printed = schema.to_string();
        let reparsed = ArraySchema::parse(&printed)
            .unwrap_or_else(|e| panic!("reparse of `{printed}` failed: {e}"));
        prop_assert_eq!(schema, reparsed);
    }

    /// Every in-bounds cell maps to a chunk whose range contains it.
    #[test]
    fn cell_lands_inside_its_chunk(
        schema in arb_schema(),
        offsets in proptest::collection::vec(0i64..400, 3),
    ) {
        let cell: Vec<i64> = schema
            .dimensions
            .iter()
            .zip(&offsets)
            .map(|(d, &o)| {
                let span = d.end.map(|e| e - d.start + 1).unwrap_or(i64::MAX / 4);
                d.start + o.min(span - 1)
            })
            .collect();
        let chunk = chunk_of(&schema, &cell).expect("cell is in bounds");
        for (d, dim) in schema.dimensions.iter().enumerate() {
            let (lo, hi) = dim.chunk_range(chunk.index(d));
            prop_assert!(cell[d] >= lo && cell[d] <= hi,
                "cell {:?} outside chunk range [{lo}, {hi}] on dim {d}", cell);
        }
    }

    /// Hilbert index/coords are mutually inverse for arbitrary points.
    #[test]
    fn hilbert_roundtrips(
        ndims in 1usize..5,
        bits in 1u32..6,
        seed in any::<u64>(),
    ) {
        let side = 1u64 << bits;
        let coords: Vec<u64> = (0..ndims)
            .map(|d| seed.rotate_left(13 * d as u32) % side)
            .collect();
        let h = hilbert_index(&coords, bits);
        prop_assert!(h < (1u128 << (bits as usize * ndims)));
        prop_assert_eq!(hilbert_coords(h, bits, ndims), coords);
    }

    /// The generalized pseudo-Hilbert scan covers any rectangle exactly
    /// once; every step is Chebyshev-adjacent and at most one step per
    /// rectangle is diagonal (the paper's citation [32] permits the same).
    #[test]
    fn gilbert_covers_any_rectangle(w in 1i64..40, h in 1i64..40) {
        let path = gilbert2d(w, h);
        prop_assert_eq!(path.len() as i64, w * h);
        let mut seen = std::collections::HashSet::new();
        for &(x, y) in &path {
            prop_assert!(x >= 0 && x < w && y >= 0 && y < h);
            prop_assert!(seen.insert((x, y)), "repeated point ({x},{y})");
        }
        let mut diagonals = 0;
        for pair in path.windows(2) {
            let dx = (pair[0].0 - pair[1].0).abs();
            let dy = (pair[0].1 - pair[1].1).abs();
            prop_assert_eq!(dx.max(dy), 1,
                "curve jumped between {:?} and {:?}", pair[0], pair[1]);
            if dx + dy == 2 {
                diagonals += 1;
            }
        }
        prop_assert!(diagonals <= 1, "{} diagonal steps in {}x{}", diagonals, w, h);
    }

    /// The inline `ChunkCoords` must be observationally equivalent to the
    /// old `Vec<i64>` representation: identical equality, ordering,
    /// hash-based deduplication, and a lossless round trip through the
    /// serialized (`Vec<i64>`) form.
    #[test]
    fn inline_coords_match_vec_model(
        vecs in proptest::collection::vec(
            proptest::collection::vec(-1000i64..1000, 1..MAX_DIMS + 1),
            2..20,
        ),
    ) {
        use std::collections::{BTreeSet, HashSet};
        let inline: Vec<ChunkCoords> =
            vecs.iter().map(|v| ChunkCoords::new(v.as_slice())).collect();

        // Round trip through the wire form (the old representation's
        // serde payload was exactly this Vec<i64>).
        for (v, c) in vecs.iter().zip(&inline) {
            prop_assert_eq!(&c.to_vec(), v);
            prop_assert_eq!(ChunkCoords::new(c.to_vec()), *c);
            prop_assert_eq!(c.ndims(), v.len());
            for (d, &x) in v.iter().enumerate() {
                prop_assert_eq!(c.index(d), x);
            }
        }

        // Pairwise comparisons must match the Vec model exactly.
        for (va, ca) in vecs.iter().zip(&inline) {
            for (vb, cb) in vecs.iter().zip(&inline) {
                prop_assert_eq!(va == vb, ca == cb);
                prop_assert_eq!(va.cmp(vb), ca.cmp(cb));
            }
        }

        // Hash/ord containers dedup identically.
        let vec_set: BTreeSet<_> = vecs.iter().cloned().collect();
        let ord_set: BTreeSet<_> = inline.iter().copied().collect();
        let hash_set: HashSet<_> = inline.iter().copied().collect();
        prop_assert_eq!(ord_set.len(), vec_set.len());
        prop_assert_eq!(hash_set.len(), vec_set.len());

        // Sorted order is the Vec order.
        let mut sorted_vecs = vecs.clone();
        sorted_vecs.sort();
        let mut sorted_inline = inline.clone();
        sorted_inline.sort();
        let as_vecs: Vec<Vec<i64>> = sorted_inline.iter().map(|c| c.to_vec()).collect();
        prop_assert_eq!(as_vecs, sorted_vecs);
    }

    /// Region/chunk intersection agrees with brute-force cell membership.
    #[test]
    fn region_intersection_is_sound(
        lo0 in 0i64..20, len0 in 0i64..20,
        lo1 in 0i64..20, len1 in 0i64..20,
    ) {
        let schema = ArraySchema::new(
            "R",
            vec![AttributeDef::new("v", AttributeType::Int32)],
            vec![
                DimensionDef::bounded("x", 0, 19, 3),
                DimensionDef::bounded("y", 0, 19, 4),
            ],
        ).unwrap();
        let region = array_model::Region::new(
            vec![lo0, lo1],
            vec![(lo0 + len0).min(19), (lo1 + len1).min(19)],
        );
        for chunk in array_model::all_chunks(&schema).unwrap() {
            let brute = (0..20).any(|x| (0..20).any(|y| {
                region.contains_cell(&[x, y])
                    && chunk_of(&schema, &[x, y]).unwrap() == chunk
            }));
            prop_assert_eq!(
                region.intersects_chunk(&schema, &chunk),
                brute,
                "chunk {:?} vs region {:?}", chunk, region
            );
        }
    }
}
