//! Tuning the leading staircase to a workload (paper §5.2): the what-if
//! analysis for the sampling window `s` (Algorithm 1) and the analytical
//! node-hour cost model for the planning horizon `p` (Equations 5–9).
//!
//! ```text
//! cargo run --release --example provisioner_tuning
//! ```

use elastic_array_db::elastic::provision::{tune_plan_ahead, ClusterSnapshot, CostModelParams};
use elastic_array_db::elastic::tune_samples;
use elastic_array_db::prelude::*;

fn main() {
    // --- Algorithm 1: fit s to each workload's demand history. ---
    let ais = AisWorkload::default();
    let modis = ModisWorkload::default();
    let ais_history = ais.monthly_demand_history();
    let modis_history = modis.daily_demand_history();

    println!("what-if tuning of the sampling window s (Algorithm 1):\n");
    for (name, history) in [("AIS (monthly)", &ais_history), ("MODIS (daily)", &modis_history)] {
        let report = tune_samples(history, 4);
        let errors: Vec<String> = report
            .errors
            .iter()
            .enumerate()
            .map(|(i, e)| format!("s={}: {:.2} GB", i + 1, e))
            .collect();
        println!("  {name:<16} {}  ->  best s = {}", errors.join("  "), report.best);
    }
    println!("\n  AIS demand trends (slope random walk), so the freshest sample wins;");
    println!("  MODIS demand oscillates around a steady rate, so averaging wins.\n");

    // --- Equations 5-9: pick the planning horizon p. ---
    // Snapshot a mid-run MODIS cluster: 3 nodes, 229 GB, growing 45 GB/cycle.
    let snapshot =
        ClusterSnapshot { nodes: 3, load_gb: 229.0, insert_rate_gb: 45.6, last_query_secs: 420.0 };
    let params = CostModelParams {
        node_capacity_gb: 100.0,
        delta_secs_per_gb: 8.0,
        t_secs_per_gb: 12.0,
        horizon: 10,
    };
    let report = tune_plan_ahead(&[1, 2, 3, 4, 6, 8], &snapshot, &params);
    println!("analytical cost model for the planning horizon p (Eqs. 5-9):\n");
    println!("  {:>3} {:>12} {:>8} {:>11}", "p", "node-hours", "reorgs", "peak nodes");
    for est in &report.estimates {
        println!(
            "  {:>3} {:>12.1} {:>8} {:>11}",
            est.plan_ahead,
            est.node_hours,
            est.reorg_count,
            est.cycles.iter().map(|c| c.nodes).max().unwrap_or(0)
        );
    }
    println!("\n  tuner pick: p = {}", report.best);
    println!("  (lazy horizons reorganize constantly; eager ones over-provision)");
}
