//! The MODIS remote-sensing pipeline end to end (paper §3.1, §6.3):
//! fourteen daily cycles of satellite imagery ingested into an elastic
//! cluster governed by the leading-staircase provisioner, with the full
//! benchmark suites running every cycle.
//!
//! ```text
//! cargo run --release --example modis_pipeline
//! ```

use elastic_array_db::prelude::*;

fn main() {
    let workload = ModisWorkload::default();
    let mut config = RunnerConfig::paper_section62(PartitionerKind::ConsistentHash);
    config.initial_nodes = 1;
    config.scaling = ScalingPolicy::Staircase(StaircaseConfig {
        node_capacity_gb: 100.0,
        samples: 4,
        plan_ahead: 3,
        trigger: 1.0,
        shrink_margin: 0.0,
    });

    println!(
        "MODIS pipeline: {} daily cycles, staircase provisioner (s=4, p=3)\n",
        workload.cycles()
    );
    println!(
        "{:>5} {:>7} {:>9} {:>10} {:>9} {:>9} {:>9} {:>7}",
        "cycle", "nodes", "demand", "insert", "reorg", "queries", "balance", "moved"
    );
    println!(
        "{:>5} {:>7} {:>9} {:>10} {:>9} {:>9} {:>9} {:>7}",
        "", "", "(GB)", "(min)", "(min)", "(min)", "(RSD)", "(GB)"
    );

    let mut runner = WorkloadRunner::new(&workload, config);
    let mut total_node_hours = 0.0;
    for cycle in 0..workload.cycles() {
        let report = runner.run_cycle(cycle).expect("MODIS batches are collision-free");
        total_node_hours += report.nodes as f64 * report.phases.total_secs() / 3600.0;
        println!(
            "{:>5} {:>5}{} {:>9.0} {:>10.1} {:>9.1} {:>9.1} {:>8.0}% {:>7.0}",
            cycle + 1,
            report.nodes,
            if report.added_nodes > 0 { "+" } else { " " },
            report.demand_gb,
            report.phases.insert_secs / 60.0,
            report.phases.reorg_secs / 60.0,
            report.phases.query_secs / 60.0,
            report.rsd_after_insert * 100.0,
            report.moved_bytes as f64 / 1e9,
        );
    }

    println!("\ntotal provisioning cost (Eq. 1): {total_node_hours:.1} node-hours");
    let history = runner.provisioner().expect("staircase is active").history();
    println!(
        "controller demand history: {} observations, final {:.0} GB",
        history.len(),
        history.last().copied().unwrap_or(0.0)
    );
}
