//! Quickstart: define an array, place its chunks with an elastic
//! partitioner, run a real query, then scale the cluster out
//! incrementally and watch the balance improve.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use elastic_array_db::prelude::*;

fn main() {
    // --- 1. A SciDB-style schema: Figure 1 of the paper, writ larger. ---
    let schema = ArraySchema::parse("A<i:int32, j:float>[x=0:63,4, y=0:63,4]").unwrap();
    println!("array schema: {schema}");

    // Materialize some skewed data: a dense blob near the origin plus a
    // sparse background (only non-empty cells are stored).
    let mut array = Array::new(ArrayId(0), schema);
    for x in 0..64i64 {
        for y in 0..64i64 {
            let dense = x < 16 && y < 16;
            if dense || (x + y) % 7 == 0 {
                array
                    .insert_cell(
                        vec![x, y],
                        vec![ScalarValue::Int32((x * 64 + y) as i32), ScalarValue::Float(0.5)],
                    )
                    .unwrap();
            }
        }
    }
    println!(
        "materialized {} cells into {} chunks ({} bytes)",
        array.cell_count(),
        array.chunk_count(),
        array.byte_size()
    );

    // --- 2. A 2-node cluster and a skew-aware elastic partitioner. ---
    let mut cluster = Cluster::new(2, 1 << 20, CostModel::default()).unwrap();
    let grid = GridHint::new(vec![16, 16]);
    let mut partitioner =
        build_partitioner(PartitionerKind::KdTree, &cluster, &grid, &PartitionerConfig::default());

    let stored = StoredArray::from_array(array);
    for desc in stored.descriptors.values() {
        let node = partitioner.place(desc, &cluster);
        cluster.place(*desc, node).unwrap();
    }
    println!(
        "initial placement on 2 nodes: loads = {:?}, balance RSD = {:.0}%",
        cluster.loads(),
        relative_std_dev(&cluster.loads()) * 100.0
    );

    // --- 3. Run a real query through the engine. ---
    let mut catalog = Catalog::new();
    catalog.register(stored);
    let ctx = ExecutionContext::new(&cluster, &catalog);
    let region = Region::new(vec![0, 0], vec![15, 15]);
    let (cells, stats) = ops::subarray(&ctx, ArrayId(0), &region, &["i"]).unwrap();
    println!(
        "subarray over the dense corner: {} cells, simulated {:.2} s (scanned {} bytes)",
        cells.len(),
        stats.elapsed_secs,
        stats.bytes_scanned
    );

    // --- 4. Scale out: the K-d Tree splits the most loaded node at its
    //        byte-weighted median and ships data only to the newcomer. ---
    let new_nodes = cluster.add_nodes(2, 1 << 20);
    let plan = partitioner.scale_out(&cluster, &new_nodes);
    assert!(plan.is_incremental(&new_nodes), "K-d Tree moves data only to new nodes");
    println!(
        "scale-out to 4 nodes: {} chunk moves, {} bytes shipped",
        plan.len(),
        plan.moved_bytes()
    );
    cluster.apply_rebalance(&plan).unwrap();
    println!(
        "after rebalance: loads = {:?}, balance RSD = {:.0}%",
        cluster.loads(),
        relative_std_dev(&cluster.loads()) * 100.0
    );

    // Lookups still resolve through the partitioning table.
    let key = ChunkKey::new(ArrayId(0), ChunkCoords::new([1, 1]));
    println!(
        "chunk {key} lives on {} (partitioner) == {} (cluster)",
        partitioner.locate(&key).unwrap(),
        cluster.locate(&key).unwrap()
    );
}
