//! The AIS skew study (paper §3.2, §6.2): how each elastic partitioner
//! copes with ship-track data where 85 % of the bytes sit in 5 % of the
//! chunks. Reproduces the Figure 4/5 comparison for the AIS workload in
//! one run per scheme.
//!
//! ```text
//! cargo run --release --example ais_skew_study
//! ```

use elastic_array_db::prelude::*;

fn main() {
    let workload = AisWorkload::default();

    // First, show the raw skew the generator produces.
    let mut sizes: Vec<u64> =
        (0..3).flat_map(|c| workload.insert_batch(c)).map(|d| d.bytes).collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    let total: u64 = sizes.iter().sum();
    let top5: u64 = sizes[..sizes.len() / 20].iter().sum();
    println!(
        "AIS chunk-size skew: top 5% of chunks hold {:.0}% of the bytes; median chunk {} bytes\n",
        top5 as f64 / total as f64 * 100.0,
        sizes[sizes.len() / 2],
    );

    println!(
        "{:<16} {:>8} {:>8} {:>9} {:>9} {:>9} {:>9}",
        "partitioner", "reorg", "balance", "SPJ", "Science", "total", "moved"
    );
    println!(
        "{:<16} {:>8} {:>8} {:>9} {:>9} {:>9} {:>9}",
        "", "(min)", "(RSD)", "(min)", "(min)", "(min)", "(GB)"
    );

    for kind in PartitionerKind::ALL {
        let config = RunnerConfig::paper_section62(kind);
        let report = WorkloadRunner::new(&workload, config)
            .run_all()
            .expect("AIS batches are collision-free");
        let phases = report.phase_totals();
        println!(
            "{:<16} {:>8.1} {:>7.0}% {:>9.1} {:>9.1} {:>9.1} {:>9.0}",
            kind.label(),
            phases.reorg_secs / 60.0,
            report.mean_rsd() * 100.0,
            report.spj_secs() / 60.0,
            report.science_secs() / 60.0,
            phases.total_secs() / 60.0,
            report.cycles.iter().map(|c| c.moved_bytes).sum::<u64>() as f64 / 1e9,
        );
    }

    println!("\nreading the table:");
    println!(" - Append never moves data but balances terribly;");
    println!(" - the fine-grained hash schemes balance best and win the SPJ suite;");
    println!(" - the skew-aware clustered schemes win the Science suite;");
    println!(" - Uniform Range is brittle to skew: worst balance AND a global reshuffle.");
}
