//! The paper's future-work direction (§8), working: "more tightly
//! integrate workloads with data placement … the individual chunks that
//! stand to benefit most directly from residing on the same server."
//!
//! An AIS cluster partitioned by Consistent Hash runs its spatial
//! benchmark; the advisor observes which chunk pairs keep exchanging halo
//! data across node boundaries, proposes a bounded set of co-location
//! moves, and the same queries get cheaper — without abandoning hashing's
//! balance.
//!
//! ```text
//! cargo run --release --example affinity_advisor
//! ```

use elastic_array_db::elastic::AffinityAnalyzer;
use elastic_array_db::prelude::*;
use elastic_array_db::query::Catalog as QueryCatalog;
use query_engine::ops;

fn trajectory_stats(cluster: &Cluster, catalog: &QueryCatalog, cycle: usize) -> QueryStats {
    let ctx = ExecutionContext::new(cluster, catalog);
    let c = cycle as i64;
    let region =
        Region::new(vec![c * 4 * 43_200, -180, 0], vec![(c + 1) * 4 * 43_200 - 1, -66, 90]);
    ops::trajectory(&ctx, workloads::ais::BROADCAST, &region, "speed", "course", 0.25)
        .map(|(_, stats)| stats)
        .unwrap_or_default()
}

fn main() {
    // Build a hash-partitioned AIS cluster by running three cycles.
    let workload = AisWorkload::default();
    let mut runner = WorkloadRunner::new_owned(
        workload,
        RunnerConfig::paper_section62(PartitionerKind::ConsistentHash),
    );
    for cycle in 0..3 {
        runner.run_cycle(cycle).expect("MODIS batches are collision-free");
    }

    // Re-derive cluster + catalog state for direct experimentation: run the
    // trajectory query and observe its cross-node chunk adjacencies.
    // (WorkloadRunner keeps both internally; we rebuild the placement here
    // through the public API to keep the example self-contained.)
    let workload = AisWorkload::default();
    let mut cluster = Cluster::new(8, 100_000_000_000, CostModel::default()).unwrap();
    let mut catalog = QueryCatalog::new();
    workload.register_arrays(&mut catalog);
    let grid = workload.grid_hint();
    let mut partitioner = build_partitioner(
        PartitionerKind::ConsistentHash,
        &cluster,
        &grid,
        &PartitionerConfig::default(),
    );
    for cycle in 0..3 {
        for desc in workload.insert_batch(cycle) {
            let node = partitioner.place(&desc, &cluster);
            cluster.place(desc, node).unwrap();
            catalog.array_mut(desc.key.array).unwrap().descriptors.insert(desc.key.coords, desc);
        }
    }

    let before = trajectory_stats(&cluster, &catalog, 2);
    println!(
        "before: trajectory query costs {:.1} s ({} remote fetches, {:.2} GB shuffled)",
        before.elapsed_secs,
        before.remote_fetches,
        before.bytes_shuffled as f64 / 1e9
    );

    // Observe the spatial adjacencies the query exercises.
    let mut advisor = AffinityAnalyzer::new();
    let broadcast = catalog.array(workloads::ais::BROADCAST).unwrap();
    for (coords, desc) in &broadcast.descriptors {
        let node = cluster.locate(&desc.key).unwrap();
        for dim in [1usize, 2] {
            for delta in [-1i64, 1] {
                let mut ncoords = *coords;
                ncoords[dim] += delta;
                if let Some(ndesc) = broadcast.descriptors.get(&ncoords) {
                    if cluster.locate(&ndesc.key) != Some(node) {
                        advisor.observe(&desc.key, &ndesc.key, ndesc.bytes / 50);
                    }
                }
            }
        }
    }
    println!("observed {} cross-node co-access pairs", advisor.pair_count());

    println!("\nhottest pairs:");
    for edge in advisor.hottest_pairs(5) {
        println!(
            "  {} <-> {}  ({} accesses, {:.1} MB shipped)",
            edge.a,
            edge.b,
            edge.stats.count,
            edge.stats.bytes as f64 / 1e6
        );
    }

    // Propose up to 400 moves, keeping every node under 1.15x the mean
    // load — co-location must not buy locality with imbalance.
    let plan = advisor.propose_moves(&cluster, 1.15, 400);
    let saved = advisor.estimated_savings(&cluster, &plan, cluster.cost_model());
    println!(
        "\nadvisor proposes {} moves ({:.2} GB), predicted savings {:.1} s/cycle",
        plan.len(),
        plan.moved_bytes() as f64 / 1e9,
        saved
    );
    cluster.apply_rebalance(&plan).unwrap();

    let after = trajectory_stats(&cluster, &catalog, 2);
    println!(
        "after:  trajectory query costs {:.1} s ({} remote fetches, {:.2} GB shuffled)",
        after.elapsed_secs,
        after.remote_fetches,
        after.bytes_shuffled as f64 / 1e9
    );
    println!(
        "\nshuffled {:.2} GB -> {:.2} GB; remote fetches {} -> {}; balance RSD now {:.0}%",
        before.bytes_shuffled as f64 / 1e9,
        after.bytes_shuffled as f64 / 1e9,
        before.remote_fetches,
        after.remote_fetches,
        relative_std_dev(&cluster.loads()) * 100.0
    );
    println!("(the cap keeps balance: affinity advice trades a bounded amount of");
    println!(" skew for locality — loosen the cap and the hot node concentrates)");
}
