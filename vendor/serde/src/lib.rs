//! Minimal in-tree stand-in for `serde`.
//!
//! The build environment has no registry access, so this crate provides
//! just enough of serde's surface for the workspace to compile: the two
//! marker traits and the derive macros (which emit empty marker impls).
//! Nothing in the workspace performs actual serialization through serde —
//! artifacts that need persistence (bench JSON, report tables) write their
//! formats by hand. Replacing this stub with real serde requires no source
//! changes for derived types; the handful of hand-written marker impls
//! (e.g. `ChunkCoords` in `array-model`, which must keep the `Vec<i64>`
//! sequence wire format) document the real impls they need.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

macro_rules! impl_markers {
    ($($t:ty),* $(,)?) => {
        $(
            impl Serialize for $t {}
            impl<'de> Deserialize<'de> for $t {}
        )*
    };
}

impl_markers!(
    bool, char, i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, u128, usize, f32, f64, String
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
}
