//! Minimal in-tree stand-in for `rand` 0.8.
//!
//! Provides the subset the workloads crate uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::gen` for the primitive types
//! sampled here. The generator is xoshiro256++ seeded through SplitMix64 —
//! deterministic across platforms, statistically strong enough for the
//! moment-matching tests in `workloads::rand_util`.

/// Sampling interface (the `rand::Rng` subset used in this workspace).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample a uniformly distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from raw bits (stand-in for the
/// `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),* $(,)?) => {
        $(impl Standard for $t {
            fn sample<R: Rng>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        })*
    };
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 53 high-quality bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Construction from seeds (the `rand::SeedableRng` subset used here).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand`'s
    /// `StdRng`; same trait surface, different — but stable — stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any seed, but keep the guard cheap.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: u64 = StdRng::seed_from_u64(7).gen();
        let b: u64 = StdRng::seed_from_u64(7).gen();
        let c: u64 = StdRng::seed_from_u64(8).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bits_look_uniform() {
        // Crude frequency check: each of 64 bit positions set ~half the time.
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 64];
        let n = 4096;
        for _ in 0..n {
            let v = rng.next_u64();
            for (i, c) in counts.iter_mut().enumerate() {
                *c += ((v >> i) & 1) as u32;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            let frac = f64::from(c) / f64::from(n);
            assert!((0.45..0.55).contains(&frac), "bit {i} frequency {frac}");
        }
    }
}
