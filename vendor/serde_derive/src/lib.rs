//! Minimal in-tree stand-in for `serde_derive`.
//!
//! Emits empty marker-trait impls for the stub `serde` crate. Parses the
//! derive input by hand (no `syn`): it finds the `struct`/`enum` keyword,
//! takes the following identifier as the type name, and rejects generic
//! types (none of the workspace's derived types are generic).

use proc_macro::{TokenStream, TokenTree};

/// Extract the name of the struct/enum a derive is attached to.
fn type_name(input: TokenStream) -> (String, bool) {
    let mut iter = input.into_iter();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                if let Some(TokenTree::Ident(name)) = iter.next() {
                    let generic = matches!(
                        iter.next(),
                        Some(TokenTree::Punct(p)) if p.as_char() == '<'
                    );
                    return (name.to_string(), generic);
                }
            }
        }
    }
    panic!("serde_derive stub: could not find type name in derive input");
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, generic) = type_name(input);
    assert!(!generic, "serde_derive stub does not support generic types (deriving {name})");
    format!("impl serde::Serialize for {name} {{}}").parse().unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, generic) = type_name(input);
    assert!(!generic, "serde_derive stub does not support generic types (deriving {name})");
    format!("impl<'de> serde::Deserialize<'de> for {name} {{}}").parse().unwrap()
}
