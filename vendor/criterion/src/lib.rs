//! Minimal in-tree stand-in for `criterion`.
//!
//! Implements the subset this workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Bencher::iter`
//! / `iter_batched`, `BenchmarkId`, `black_box`, and the two entry macros —
//! with adaptive wall-clock measurement. Results print as
//! `name  median ns/iter (min .. max over N samples)` and, when the
//! `CRITERION_JSON` environment variable names a path, are also appended
//! to that file as JSON lines (used by the `ingest` bench to produce
//! `BENCH_ingest.json`).
//!
//! Invoke bench binaries with an optional substring filter argument, as
//! with real criterion: `cargo bench --bench ingest -- route_place`.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One measured benchmark result.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Fully qualified benchmark name (`group/param` or bare name).
    pub name: String,
    /// Median nanoseconds per iteration across samples.
    pub median_ns: f64,
    /// Fastest sample (ns/iter).
    pub min_ns: f64,
    /// Slowest sample (ns/iter).
    pub max_ns: f64,
    /// Number of samples taken.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
}

/// The benchmark harness root.
pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
    target_time: Duration,
    results: Vec<Sample>,
    json_path: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filter: None,
            sample_size: 12,
            target_time: Duration::from_millis(60),
            results: Vec::new(),
            json_path: std::env::var("CRITERION_JSON").ok(),
        }
    }
}

impl Criterion {
    /// Build from CLI args (`<bin> [filter-substring]`); `--bench`-style
    /// flags are ignored.
    pub fn from_args() -> Self {
        let filter =
            std::env::args().skip(1).find(|a| !a.starts_with('-')).filter(|a| !a.is_empty());
        Criterion { filter, ..Criterion::default() }
    }

    /// Set samples per benchmark (also accepted on groups).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Set the per-sample time budget.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.target_time = t;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if self.skipped(name) {
            return self;
        }
        let sample = run_bench(name, self.sample_size, self.target_time, &mut f);
        self.report(sample);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.to_string(), sample_size: None }
    }

    /// Print the final summary (called by `criterion_main!`).
    pub fn final_summary(&mut self) {
        eprintln!("benchmarks complete: {} measured", self.results.len());
        if let (Some(path), true) = (&self.json_path, !self.results.is_empty()) {
            if let Err(e) = write_json(path, &self.results) {
                eprintln!("warning: could not write {path}: {e}");
            }
        }
    }

    /// All results measured so far.
    pub fn results(&self) -> &[Sample] {
        &self.results
    }

    fn skipped(&self, name: &str) -> bool {
        self.filter.as_deref().is_some_and(|f| !name.contains(f))
    }

    fn report(&mut self, sample: Sample) {
        eprintln!(
            "{:<52} {:>14} ns/iter (min {:.0} .. max {:.0}, {} samples x {} iters)",
            sample.name,
            format!("{:.1}", sample.median_ns),
            sample.min_ns,
            sample.max_ns,
            sample.samples,
            sample.iters_per_sample,
        );
        self.results.push(sample);
    }
}

fn write_json(path: &str, results: &[Sample]) -> std::io::Result<()> {
    use std::io::Write;
    let mut out = String::from("[\n");
    for (i, s) in results.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "  {{\"name\": \"{}\", \"median_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}}}",
            s.name.replace('"', "'"),
            s.median_ns,
            s.min_ns,
            s.max_ns,
            s.samples,
            s.iters_per_sample,
        ));
    }
    out.push_str("\n]\n");
    let mut f = std::fs::File::create(path)?;
    f.write_all(out.as_bytes())
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    parent: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set samples per benchmark within this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Set the per-sample time budget (accepted for API compatibility).
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let name = format!("{}/{}", self.name, id.0);
        if !self.parent.skipped(&name) {
            let samples = self.sample_size.unwrap_or(self.parent.sample_size);
            let sample = run_bench(&name, samples, self.parent.target_time, &mut f);
            self.parent.report(sample);
        }
        self
    }

    /// Run one parameterized benchmark in this group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group.
    pub fn finish(&mut self) {}
}

/// A benchmark identifier within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identify by function name and parameter.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// Identify by parameter only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Batch sizing hint for [`Bencher::iter_batched`] (accepted for API
/// compatibility; the stub always runs one setup per routine call).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per routine invocation.
    PerIteration,
}

enum Mode {
    /// Calibrating: count how many routine calls fit the time budget.
    Calibrate { calls: u64, elapsed: Duration },
    /// Measuring: run a fixed number of calls and record the wall time.
    Measure { calls: u64, elapsed: Duration },
}

/// Passed to benchmark closures; runs the measured routine.
pub struct Bencher {
    mode: Mode,
}

impl Bencher {
    /// Measure `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match &mut self.mode {
            Mode::Calibrate { calls, elapsed } => {
                let start = Instant::now();
                black_box(routine());
                *elapsed += start.elapsed();
                *calls += 1;
            }
            Mode::Measure { calls, elapsed } => {
                let n = *calls;
                let start = Instant::now();
                for _ in 0..n {
                    black_box(routine());
                }
                *elapsed = start.elapsed();
            }
        }
    }

    /// Measure `routine` with a fresh, untimed `setup` product per call.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        match &mut self.mode {
            Mode::Calibrate { calls, elapsed } => {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                *elapsed += start.elapsed();
                *calls += 1;
            }
            Mode::Measure { calls, elapsed } => {
                let n = *calls;
                let mut total = Duration::ZERO;
                for _ in 0..n {
                    let input = setup();
                    let start = Instant::now();
                    black_box(routine(input));
                    total += start.elapsed();
                }
                *elapsed = total;
            }
        }
    }

    /// Like `iter_batched`, timing the routine per batch.
    pub fn iter_batched_ref<I, O, S: FnMut() -> I, R: FnMut(&mut I) -> O>(
        &mut self,
        setup: S,
        mut routine: R,
        size: BatchSize,
    ) {
        self.iter_batched(setup, |mut i| routine(&mut i), size)
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    samples: usize,
    target: Duration,
    f: &mut F,
) -> Sample {
    // Calibration: call the routine once at a time until the time budget
    // or a call cap is reached, to pick the per-sample iteration count.
    let mut calls = 0u64;
    let mut spent = Duration::ZERO;
    while spent < target && calls < 10_000 {
        let mut b = Bencher { mode: Mode::Calibrate { calls: 0, elapsed: Duration::ZERO } };
        f(&mut b);
        if let Mode::Calibrate { calls: c, elapsed } = b.mode {
            if c == 0 {
                break; // routine never ran; avoid an infinite loop
            }
            calls += c;
            spent += elapsed;
        }
    }
    let per_iter = spent.as_nanos().max(1) / u128::from(calls.max(1));
    let iters = (target.as_nanos() / per_iter.max(1)).clamp(1, 1_000_000) as u64;

    let mut per_sample_ns: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher { mode: Mode::Measure { calls: iters, elapsed: Duration::ZERO } };
        f(&mut b);
        if let Mode::Measure { elapsed, .. } = b.mode {
            per_sample_ns.push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }
    per_sample_ns.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    let median = per_sample_ns[per_sample_ns.len() / 2];
    Sample {
        name: name.to_string(),
        median_ns: median,
        min_ns: per_sample_ns.first().copied().unwrap_or(0.0),
        max_ns: per_sample_ns.last().copied().unwrap_or(0.0),
        samples,
        iters_per_sample: iters,
    }
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declare the bench binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}
