//! Minimal in-tree stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use — `Strategy` with `prop_map`/`prop_flat_map`, ranges, tuples,
//! `Just`, `any`, `prop_oneof!`, `prop_compose!`, `collection::vec`, and
//! the `proptest!` test macro — over a deterministic per-test RNG.
//! Failing cases are reported with their case number and seed so they can
//! be replayed; there is no shrinking.

use std::ops::Range;
use std::rc::Rc;

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary string (the test name).
    pub fn new_for(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Honor PROPTEST_SEED for replaying a failing case: the reported
        // seed is the generator state right before the failing case, so
        // adopting it verbatim reproduces that case as case 0.
        if let Ok(seed) = std::env::var("PROPTEST_SEED") {
            if let Ok(s) = seed.parse::<u64>() {
                h = s;
            }
        }
        TestRng { state: h }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// The current seed state (reported on failure for replay).
    pub fn state(&self) -> u64 {
        self.state
    }
}

/// A value generator. Unlike real proptest there is no shrinking tree;
/// `generate` produces one value per call.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then use it to pick a follow-up strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe view of [`Strategy`], used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Wraps a generation closure (used by `prop_compose!`).
pub struct FnStrategy<F>(F);

impl<F> FnStrategy<F> {
    /// Wrap `f` as a strategy.
    pub fn new<T>(f: F) -> Self
    where
        F: Fn(&mut TestRng) -> T,
    {
        FnStrategy(f)
    }
}

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice among boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the alternatives; panics when empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {
        $(impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        })*
    };
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// A `Vec` of strategies generates element-wise.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

/// The unconstrained strategy for `T` (`any::<T>()`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// See [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length constraint for [`vec`]: an exact count or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// Generates `Vec`s whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The commonly used names in one import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_compose, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Assert within a property; formats like `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality within a property; formats like `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Uniform choice among alternative strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Define a function returning a composed strategy:
/// `fn name(args)(bindings in strategies) -> T { body }`.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($arg:ident: $argty:ty),* $(,)?)
        ($($field:ident in $strat:expr),* $(,)?) -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($arg: $argty),*) -> impl $crate::Strategy<Value = $ret> {
            $crate::FnStrategy::new(move |rng: &mut $crate::TestRng| {
                $(let $field = $crate::Strategy::generate(&($strat), rng);)*
                $body
            })
        }
    };
}

/// Declare property tests. Each `fn` runs `config.cases` random cases;
/// a failure reports the case number and replay seed.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        cfg = $cfg:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::new_for(stringify!($name));
                for case in 0..config.cases {
                    let seed = rng.state();
                    let run = || {
                        $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                        $body
                    };
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run));
                    if let Err(payload) = outcome {
                        eprintln!(
                            "proptest stub: {} failed at case {case} (replay: PROPTEST_SEED={seed})",
                            stringify!($name),
                        );
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}
