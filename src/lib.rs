//! # elastic-array-db
//!
//! A from-scratch Rust reproduction of **"Incremental Elasticity for Array
//! Databases"** (Jennie Duggan & Michael Stonebraker, SIGMOD 2014): elastic
//! partitioners and a leading-staircase provisioner for a shared-nothing,
//! SciDB-style array store, evaluated with synthetic MODIS and AIS
//! workloads over a deterministic cluster simulator.
//!
//! This crate is a facade: it re-exports the workspace's five library
//! crates under one roof and provides a [`prelude`] for the examples and
//! integration tests.
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`array`] | `array-model` | schemas, chunks, coordinates, Hilbert curves |
//! | [`cluster`] | `cluster-sim` | nodes, placement, byte-flow cost model |
//! | [`elastic`] | `elastic-core` | the 8 partitioners + the staircase provisioner |
//! | [`query`] | `query-engine` | distributed array operators with cost accounting |
//! | [`workloads`] | `workloads` | MODIS/AIS generators, cycle driver, benchmark suites |
//!
//! ## Quickstart
//!
//! ```
//! use elastic_array_db::prelude::*;
//!
//! // A 2-node cluster and a K-d Tree partitioner over an 8x8 chunk grid.
//! let mut cluster = Cluster::new(2, 1_000_000, CostModel::default()).unwrap();
//! let grid = GridHint::new(vec![8, 8]);
//! let mut partitioner =
//!     build_partitioner(PartitionerKind::KdTree, &cluster, &grid, &PartitionerConfig::default());
//!
//! // Place a chunk, then scale out incrementally.
//! let key = ChunkKey::new(ArrayId(0), ChunkCoords::new([3, 4]));
//! let desc = ChunkDescriptor::new(key.clone(), 500_000, 100);
//! let node = partitioner.place(&desc, &cluster);
//! cluster.place(desc, node).unwrap();
//!
//! let new_nodes = cluster.add_nodes(1, 1_000_000);
//! let plan = partitioner.scale_out(&cluster, &new_nodes);
//! assert!(plan.is_incremental(&new_nodes));
//! cluster.apply_rebalance(&plan).unwrap();
//! ```

#![warn(missing_docs)]

pub use array_model as array;
pub use cluster_sim as cluster;
pub use elastic_core as elastic;
pub use query_engine as query;
pub use workloads;

/// The commonly used types in one import.
pub mod prelude {
    pub use array_model::{
        Array, ArrayId, ArraySchema, AttributeDef, CellBuffer, ChunkCoords, ChunkDescriptor,
        ChunkKey, DimensionDef, Region, ScalarValue, StringEncoding,
    };
    pub use cluster_sim::{
        gb, relative_std_dev, Cluster, CostModel, NodeId, PhaseBreakdown, RebalancePlan,
    };
    pub use elastic_core::{
        batch_prefix_bytes, build_partitioner, route_batch, GridHint, Partitioner,
        PartitionerConfig, PartitionerKind, ProvisionDecision, RouteEpoch, StaircaseConfig,
        StaircaseProvisioner,
    };
    pub use query_engine::{ops, Catalog, ExecutionContext, Predicate, QueryStats, StoredArray};
    pub use workloads::{
        AisWorkload, CycleError, ErrorPolicy, FailedCycle, FaultEvent, FaultKind, FaultPlan,
        ModisWorkload, RunReport, RunnerConfig, ScalingPolicy, SuiteReport, Workload,
        WorkloadRunner,
    };
}
